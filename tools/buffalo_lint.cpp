/**
 * @file
 * Project linter enforcing Buffalo's concurrency and observability
 * invariants at the source level (DESIGN.md, "Static analysis &
 * sanitizer matrix"). Rules:
 *
 *   guarded-by      In headers that opt into the thread-safety
 *                   annotations (they include
 *                   "util/thread_annotations.h"), every data member
 *                   declared after a mutex member must carry
 *                   BUFFALO_GUARDED_BY(...) — or an explicit
 *                   `// buffalo-lint: allow(guarded-by) <reason>`.
 *                   This is what keeps the Clang `-Wthread-safety`
 *                   build meaningful: an unannotated member is
 *                   invisible to the analysis.
 *   obs-name        Span/metric call sites must use the constants in
 *                   src/obs/names.h, never raw string literals, so
 *                   instrumentation, obs_validate, and ci.sh cannot
 *                   drift apart.
 *   raw-alloc       No naked new[] / malloc / calloc / realloc /
 *                   free in src/ — tensors and buffers own memory
 *                   through RAII containers.
 *   header-hygiene  Every header has `#pragma once`; no `"../"`
 *                   relative-up includes.
 *   ci-names        Every literal name in a tools/ci.sh
 *                   `--expect-spans` / `--expect-metrics` /
 *                   `--expect-events` list must exist in
 *                   src/obs/names.h (the `@core` / `@serve`
 *                   shorthands expand inside obs_validate itself).
 *
 * Usage:
 *   buffalo_lint [--root DIR]     lint DIR/src plus DIR/tools/ci.sh
 *   buffalo_lint FILE...          lint exactly these files (fixture
 *                                 mode; ci-names is skipped)
 *
 * Exits 0 when clean, 1 with `file:line: [rule] message` diagnostics
 * on violations, 2 on usage or I/O errors.
 */
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diag
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

std::vector<Diag> g_diags;

void
report(const std::string &file, std::size_t line,
       const std::string &rule, const std::string &message)
{
    g_diags.push_back({file, line, rule, message});
}

[[noreturn]] void
fatal(const std::string &message)
{
    std::fprintf(stderr, "buffalo_lint: %s\n", message.c_str());
    std::exit(2);
}

std::vector<std::string>
readLines(const fs::path &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read " + path.string());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/**
 * Strips comments and literal contents, preserving line lengths and
 * positions (stripped characters become spaces, string delimiters
 * stay). Block-comment state carries across lines.
 */
std::vector<std::string>
stripComments(const std::vector<std::string> &lines)
{
    std::vector<std::string> out;
    out.reserve(lines.size());
    bool in_block = false;
    for (const std::string &raw : lines) {
        std::string code(raw.size(), ' ');
        bool in_string = false, in_char = false;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            const char c = raw[i];
            if (in_block) {
                if (c == '*' && i + 1 < raw.size() &&
                    raw[i + 1] == '/') {
                    in_block = false;
                    ++i;
                }
                continue;
            }
            if (in_string) {
                if (c == '\\')
                    ++i;
                else if (c == '"') {
                    in_string = false;
                    code[i] = '"';
                }
                continue;
            }
            if (in_char) {
                if (c == '\\')
                    ++i;
                else if (c == '\'') {
                    in_char = false;
                    code[i] = '\'';
                }
                continue;
            }
            if (c == '/' && i + 1 < raw.size()) {
                if (raw[i + 1] == '/')
                    break; // rest of line is a comment
                if (raw[i + 1] == '*') {
                    in_block = true;
                    ++i;
                    continue;
                }
            }
            if (c == '"') {
                in_string = true;
                code[i] = '"';
                continue;
            }
            if (c == '\'') {
                in_char = true;
                code[i] = '\'';
                continue;
            }
            code[i] = c;
        }
        out.push_back(std::move(code));
    }
    return out;
}

bool
allows(const std::string &raw_line, const std::string &rule)
{
    return raw_line.find("buffalo-lint: allow(" + rule + ")") !=
           std::string::npos;
}

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

// --- Rule: guarded-by ------------------------------------------------

const std::regex kMutexDecl(
    R"(^\s*(mutable\s+)?((buffalo::)?util::Mutex|std::mutex|std::shared_mutex|std::recursive_mutex|std::timed_mutex)\s+[A-Za-z_]\w*\s*;)");

const std::regex kMemberName(R"(([A-Za-z_]\w*_)\s*(=[^;]*)?;\s*$)");

bool
isExemptMember(const std::string &code)
{
    const std::string t = trim(code);
    for (const char *prefix :
         {"static ", "constexpr ", "const ", "using ", "typedef ",
          "friend ", "return ", "delete ", "case "})
        if (t.rfind(prefix, 0) == 0)
            return true;
    for (const char *type :
         {"condition_variable", "std::atomic", "atomic<",
          "std::thread", "Mutex", "mutex"})
        if (t.find(type) != std::string::npos)
            return true;
    return false;
}

/**
 * Checks that members declared after a mutex member are annotated.
 * Tracks one "guarded region" per mutex declaration, scoped to the
 * brace depth the mutex was declared at; the region closes with its
 * class body.
 */
void
lintGuardedBy(const std::string &file,
              const std::vector<std::string> &raw,
              const std::vector<std::string> &code)
{
    std::vector<int> region_depths;
    int depth = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string &line = code[i];
        const int depth_before = depth;
        for (const char c : line) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
        }
        while (!region_depths.empty() && region_depths.back() > depth)
            region_depths.pop_back();

        if (std::regex_search(line, kMutexDecl)) {
            region_depths.push_back(depth_before);
            continue;
        }
        const bool in_region =
            std::find(region_depths.begin(), region_depths.end(),
                      depth_before) != region_depths.end();
        if (!in_region)
            continue;
        const std::string t = trim(line);
        if (t.empty() || t.back() != ';')
            continue;
        if (t.find("BUFFALO_GUARDED_BY") != std::string::npos ||
            t.find("BUFFALO_PT_GUARDED_BY") != std::string::npos)
            continue;
        if (t.find('(') != std::string::npos) // function declaration
            continue;
        if (isExemptMember(t))
            continue;
        std::smatch m;
        if (!std::regex_search(t, m, kMemberName))
            continue;
        if (allows(raw[i], "guarded-by"))
            continue;
        report(file, i + 1, "guarded-by",
               "member '" + m[1].str() +
                   "' is declared after a mutex but carries no "
                   "BUFFALO_GUARDED_BY annotation");
    }
}

// --- Rule: obs-name --------------------------------------------------

const std::regex kObsCall(
    R"((\.|->)\s*(counter|gauge|histogram|record|event)\s*\(\s*")");
const std::regex kSpanCall(R"(\bSpan\s*([A-Za-z_]\w*)?\s*[({]\s*")");

void
lintObsNames(const std::string &file,
             const std::vector<std::string> &raw,
             const std::vector<std::string> &code)
{
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::smatch m;
        const bool obs_call = std::regex_search(code[i], m, kObsCall);
        const bool span_call =
            !obs_call && std::regex_search(code[i], m, kSpanCall);
        if (!obs_call && !span_call)
            continue;
        if (allows(raw[i], "obs-name"))
            continue;
        report(file, i + 1, "obs-name",
               std::string(obs_call ? "metric" : "span") +
                   " name passed as a raw string literal; use a "
                   "constant from src/obs/names.h");
    }
}

// --- Rule: raw-alloc -------------------------------------------------

const std::regex kArrayNew(R"(\bnew\s+[A-Za-z_][\w:<>,\s\*]*\[)");
const std::regex kCAlloc(R"(\b(malloc|calloc|realloc|free)\s*\()");

void
lintRawAlloc(const std::string &file,
             const std::vector<std::string> &raw,
             const std::vector<std::string> &code)
{
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::smatch m;
        std::string what;
        if (std::regex_search(code[i], m, kArrayNew))
            what = "array new[]";
        else if (std::regex_search(code[i], m, kCAlloc))
            what = m[1].str() + "()";
        else
            continue;
        if (allows(raw[i], "raw-alloc"))
            continue;
        report(file, i + 1, "raw-alloc",
               "naked " + what +
                   "; own memory through RAII containers "
                   "(std::vector, tensor::Tensor, ...)");
    }
}

// --- Rule: header-hygiene --------------------------------------------

void
lintHeaderHygiene(const std::string &file,
                  const std::vector<std::string> &raw,
                  const std::vector<std::string> &code)
{
    bool has_pragma_once = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string t = trim(code[i]);
        if (t.rfind("#pragma", 0) == 0 &&
            t.find("once") != std::string::npos)
            has_pragma_once = true;
        // Include paths live inside string literals, which the
        // stripped view blanks — consult the raw line for them.
        if (t.rfind("#include", 0) == 0 &&
            raw[i].find("\"../") != std::string::npos &&
            !allows(raw[i], "header-hygiene"))
            report(file, i + 1, "header-hygiene",
                   "relative-up include; include project headers "
                   "by their src/-rooted path");
    }
    if (!has_pragma_once)
        report(file, 1, "header-hygiene", "missing #pragma once");
}

// --- Rule: ci-names --------------------------------------------------

std::set<std::string>
collectRegisteredNames(const fs::path &names_header)
{
    const std::vector<std::string> lines = readLines(names_header);
    std::set<std::string> names;
    const std::regex literal("\"([a-z0-9_.]+)\"");
    for (const std::string &line : lines) {
        for (std::sregex_iterator it(line.begin(), line.end(),
                                     literal),
             end;
             it != end; ++it)
            names.insert((*it)[1].str());
    }
    return names;
}

void
lintCiNames(const fs::path &ci_script,
            const std::set<std::string> &registered)
{
    const std::vector<std::string> lines = readLines(ci_script);
    const std::regex expect(
        R"(--expect-(spans|metrics|events)\s+"?([^"\s\\]+))");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        for (std::sregex_iterator it(lines[i].begin(),
                                     lines[i].end(), expect),
             end;
             it != end; ++it) {
            std::stringstream list((*it)[2].str());
            std::string name;
            while (std::getline(list, name, ',')) {
                if (name.empty() || name[0] == '@' ||
                    name.find('$') != std::string::npos)
                    continue;
                if (registered.count(name) == 0)
                    report(ci_script.string(), i + 1, "ci-names",
                           "expected name \"" + name +
                               "\" is not registered in "
                               "src/obs/names.h");
            }
        }
    }
}

// --- Driver ----------------------------------------------------------

bool
isHeader(const fs::path &path)
{
    return path.extension() == ".h";
}

void
lintFile(const fs::path &path)
{
    const std::vector<std::string> raw = readLines(path);
    const std::vector<std::string> code = stripComments(raw);
    const std::string file = path.string();

    const bool opted_in = [&] {
        for (const std::string &line : raw)
            if (line.find("util/thread_annotations.h") !=
                std::string::npos)
                return true;
        return false;
    }();
    if (isHeader(path) && opted_in &&
        path.filename() != "thread_annotations.h")
        lintGuardedBy(file, raw, code);
    if (path.parent_path().filename() != "obs" ||
        path.filename() != "names.h")
        lintObsNames(file, raw, code);
    lintRawAlloc(file, raw, code);
    if (isHeader(path))
        lintHeaderHygiene(file, raw, code);
}

std::vector<fs::path>
collectSources(const fs::path &src_root)
{
    std::vector<fs::path> files;
    for (const auto &entry :
         fs::recursive_directory_iterator(src_root)) {
        if (!entry.is_regular_file())
            continue;
        const fs::path &p = entry.path();
        if (p.extension() == ".h" || p.extension() == ".cpp")
            files.push_back(p);
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root;
    bool root_set = false;
    std::vector<fs::path> explicit_files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
            std::printf("usage: buffalo_lint [--root DIR] [FILE...]\n"
                        "Lints DIR/src and DIR/tools/ci.sh, or "
                        "exactly FILE... when given.\n");
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc)
                fatal("--root needs a directory");
            root = argv[i];
            root_set = true;
        } else {
            explicit_files.emplace_back(arg);
        }
    }

    if (!explicit_files.empty()) {
        for (const fs::path &file : explicit_files) {
            if (!fs::exists(file))
                fatal("no such file: " + file.string());
            lintFile(file);
        }
    } else {
        if (!root_set)
            root = ".";
        const fs::path src = root / "src";
        if (!fs::is_directory(src))
            fatal("no src/ directory under " + root.string() +
                  " (pass --root or explicit files)");
        for (const fs::path &file : collectSources(src))
            lintFile(file);
        const fs::path names = src / "obs" / "names.h";
        const fs::path ci = root / "tools" / "ci.sh";
        if (fs::exists(names) && fs::exists(ci))
            lintCiNames(ci, collectRegisteredNames(names));
    }

    std::sort(g_diags.begin(), g_diags.end(),
              [](const Diag &a, const Diag &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    for (const Diag &d : g_diags)
        std::printf("%s:%zu: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    if (!g_diags.empty()) {
        std::printf("buffalo_lint: %zu violation%s\n", g_diags.size(),
                    g_diags.size() == 1 ? "" : "s");
        return 1;
    }
    std::printf("buffalo_lint: clean\n");
    return 0;
}
