/**
 * @file
 * Offline critical-path bottleneck analyzer (DESIGN.md,
 * "Critical-path attribution").
 *
 * Ingests the observability artifacts a run leaves behind — the
 * Chrome trace (--trace-out), the JSONL run log (--log-out), and the
 * metrics dump (--metrics-json) — reassembles the per-item causal
 * span chains from `args.item`, and prints a ranked bottleneck
 * report: per-stage critical-path self time, overlap efficiency,
 * what-if bounds (perfect overlap, zero cache misses, N-times-faster
 * block generation), and the wait-vs-service decomposition of every
 * instrumented queue. With --check it exits non-zero unless the
 * report is sane (items found, overlap efficiency in (0, 1],
 * dominant stage identified, all --expect-stages present), which is
 * how tools/ci.sh gates the smoke runs.
 */
#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/json.h"
#include "obs/names.h"
#include "util/flags.h"

namespace {

namespace obs = buffalo::obs;
namespace names = buffalo::obs::names;

[[noreturn]] void
fail(const std::string &message)
{
    std::fprintf(stderr, "buffalo_profile: %s\n", message.c_str());
    std::exit(1);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, ','))
        if (!part.empty())
            out.push_back(part);
    return out;
}

/** One queue's wait/service histograms from the metrics dump. */
struct QueueRow
{
    double wait_p50 = 0.0, wait_p95 = 0.0;
    double service_p50 = 0.0, service_p95 = 0.0;
    double wait_count = 0.0, service_count = 0.0;
};

/**
 * Pulls the queue.<name>.{wait_ms,service_ms} histograms out of a
 * metrics dump, keyed by queue name, plus the tracer drop gauge.
 */
std::map<std::string, QueueRow>
loadQueueRows(const std::string &path, double *dropped_spans)
{
    std::map<std::string, QueueRow> rows;
    const obs::JsonValue doc =
        obs::JsonValue::parse(obs::readFileText(path));
    if (!doc.isObject())
        fail(path + ": metrics document must be a JSON object");
    if (doc.has("gauges") && doc.at("gauges").isObject()) {
        const obs::JsonValue &gauges = doc.at("gauges");
        const char *dropped = names::kGaugeTracerDroppedSpans;
        if (gauges.has(dropped) && gauges.at(dropped).isNumber())
            *dropped_spans = gauges.at(dropped).asNumber();
    }
    if (!doc.has("histograms") || !doc.at("histograms").isObject())
        return rows;
    const obs::JsonValue &histograms = doc.at("histograms");
    for (const std::string &name : histograms.keys()) {
        // queue.<queue>.<wait_ms|service_ms>
        if (name.rfind("queue.", 0) != 0)
            continue;
        const std::size_t dot = name.rfind('.');
        const std::string queue = name.substr(6, dot - 6);
        const std::string kind = name.substr(dot + 1);
        const obs::JsonValue &h = histograms.at(name);
        if (!h.isObject() || !h.has("p50") || !h.has("p95") ||
            !h.has("count"))
            continue;
        QueueRow &row = rows[queue];
        if (kind == "wait_ms") {
            row.wait_p50 = h.at("p50").asNumber();
            row.wait_p95 = h.at("p95").asNumber();
            row.wait_count = h.at("count").asNumber();
        } else if (kind == "service_ms") {
            row.service_p50 = h.at("p50").asNumber();
            row.service_p95 = h.at("p95").asNumber();
            row.service_count = h.at("count").asNumber();
        }
    }
    return rows;
}

void
writeReportJson(const std::string &path,
                const obs::CriticalPathReport &report,
                double cache_hit_rate)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("items").value(
        static_cast<std::uint64_t>(report.items));
    w.key("spans").value(
        static_cast<std::uint64_t>(report.spans));
    w.key("incomplete_items")
        .value(static_cast<std::uint64_t>(report.incomplete_items));
    w.key("wall_us").value(report.wall_us);
    w.key("serial_us").value(report.serial_us);
    w.key("idle_us").value(report.idle_us);
    w.key("overlap_efficiency").value(report.overlap_efficiency);
    w.key("avg_concurrency").value(report.avg_concurrency);
    w.key("dominant_stage").value(report.dominant_stage);
    w.key("dominant_share").value(report.dominant_share);
    w.key("cache_hit_rate").value(cache_hit_rate);
    w.key("stages").beginArray();
    for (const obs::CpStageReport &stage : report.stages) {
        w.beginObject();
        w.key("stage").value(stage.stage);
        w.key("spans").value(
            static_cast<std::uint64_t>(stage.spans));
        w.key("busy_us").value(stage.busy_us);
        w.key("cp_self_us").value(stage.cp_self_us);
        w.key("cp_share").value(stage.cp_share);
        w.endObject();
    }
    w.endArray();
    w.key("whatifs").beginArray();
    for (const obs::CpWhatIf &whatif : report.whatifs) {
        w.beginObject();
        w.key("name").value(whatif.name);
        w.key("wall_us").value(whatif.wall_us);
        w.key("speedup").value(whatif.speedup);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    obs::writeFileText(path, w.str());
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        buffalo::util::Flags flags(argc, argv);
        if (flags.getBool("help")) {
            std::printf(
                "usage: buffalo_profile --trace FILE\n"
                "         [--run-log FILE] [--metrics FILE]\n"
                "         [--stage-order a,b,c] [--top N]\n"
                "         [--json-out FILE]\n"
                "         [--check [--expect-stages a,b]]\n"
                "Reassembles per-item causal span chains from a\n"
                "recorded trace and prints a ranked critical-path\n"
                "bottleneck report. --run-log supplies the cache hit\n"
                "rate for the zero-cache-miss what-if; --metrics adds\n"
                "the per-queue wait-vs-service table. --check exits\n"
                "non-zero unless the report is sane (used by ci.sh).\n");
            return 0;
        }
        flags.checkKnown({"help", "trace", "run-log", "metrics",
                          "stage-order", "top", "json-out", "check",
                          "expect-stages"});
        if (!flags.has("trace"))
            fail("--trace FILE is required (a Chrome trace written "
                 "with --trace-out)");

        const std::string trace_path = flags.getString("trace");
        std::vector<obs::CpSpan> spans =
            obs::loadTraceSpans(trace_path);
        if (spans.empty())
            fail(trace_path +
                 ": no item-attributed spans (args.item) — was the "
                 "run traced with this build's --trace-out?");

        obs::CpOptions options;
        options.stage_order =
            splitCommas(flags.getString("stage-order"));
        double cache_hit_rate = -1.0;
        if (flags.has("run-log"))
            cache_hit_rate = obs::cacheHitRateFromRunLog(
                flags.getString("run-log"));
        options.cache_hit_rate = cache_hit_rate;
        for (const obs::CpSpan &span : spans) {
            if (span.stage == names::kSpanPipelineFeature)
                options.feature_stage = names::kSpanPipelineFeature;
            if (span.stage == names::kSpanPipelineBuild)
                options.build_stage = names::kSpanPipelineBuild;
        }

        const obs::CriticalPathReport report =
            obs::analyzeCriticalPath(std::move(spans), options);

        std::printf("buffalo_profile: %s — %zu items, %zu spans",
                    trace_path.c_str(), report.items, report.spans);
        if (report.incomplete_items > 0)
            std::printf(" (%zu incomplete chains)",
                        report.incomplete_items);
        std::printf("\n");
        std::printf("wall %.3f s   serial %.3f s   overlap "
                    "efficiency %.3f   avg concurrency %.2f\n",
                    report.wall_us / 1e6, report.serial_us / 1e6,
                    report.overlap_efficiency,
                    report.avg_concurrency);
        std::printf("idle on critical path %.3f s (%.1f%% of wall)\n",
                    report.idle_us / 1e6,
                    report.wall_us > 0.0
                        ? 100.0 * report.idle_us / report.wall_us
                        : 0.0);

        // Ranked bottleneck table: stages by critical-path self time.
        std::vector<obs::CpStageReport> ranked = report.stages;
        std::sort(ranked.begin(), ranked.end(),
                  [](const obs::CpStageReport &a,
                     const obs::CpStageReport &b) {
                      return a.cp_self_us > b.cp_self_us;
                  });
        const int top = flags.getInt("top", 0);
        if (top > 0 &&
            ranked.size() > static_cast<std::size_t>(top))
            ranked.resize(static_cast<std::size_t>(top));
        std::printf("critical path by stage (self time, ranked):\n");
        std::printf("  %-24s %10s %7s %10s %7s\n", "stage",
                    "self(s)", "share", "busy(s)", "spans");
        for (const obs::CpStageReport &stage : ranked)
            std::printf("  %-24s %10.3f %6.1f%% %10.3f %7zu\n",
                        stage.stage.c_str(),
                        stage.cp_self_us / 1e6,
                        100.0 * stage.cp_share,
                        stage.busy_us / 1e6, stage.spans);
        if (!report.dominant_stage.empty())
            std::printf("dominant stage: %s (%.1f%% of wall)\n",
                        report.dominant_stage.c_str(),
                        100.0 * report.dominant_share);

        if (!report.whatifs.empty()) {
            std::printf("what-if bounds:\n");
            for (const obs::CpWhatIf &whatif : report.whatifs)
                std::printf("  %-18s wall %.3f s   speedup %.2fx\n",
                            whatif.name.c_str(),
                            whatif.wall_us / 1e6, whatif.speedup);
        }
        if (cache_hit_rate >= 0.0)
            std::printf("feature-cache hit rate: %.3f "
                        "(from --run-log)\n",
                        cache_hit_rate);

        if (flags.has("metrics")) {
            double dropped_spans = 0.0;
            const std::map<std::string, QueueRow> rows =
                loadQueueRows(flags.getString("metrics"),
                              &dropped_spans);
            if (!rows.empty()) {
                std::printf("queue wait vs service (ms):\n");
                std::printf("  %-12s %9s %9s %9s %9s %7s\n", "queue",
                            "wait p50", "wait p95", "svc p50",
                            "svc p95", "pops");
                for (const auto &[queue, row] : rows)
                    std::printf(
                        "  %-12s %9.3f %9.3f %9.3f %9.3f %7.0f\n",
                        queue.c_str(), row.wait_p50, row.wait_p95,
                        row.service_p50, row.service_p95,
                        row.wait_count);
            }
            if (dropped_spans > 0.0)
                std::printf(
                    "warning: tracer dropped %.0f spans — chains may "
                    "be incomplete; raise --trace-ring\n",
                    dropped_spans);
        }

        if (flags.has("json-out"))
            writeReportJson(flags.getString("json-out"), report,
                            cache_hit_rate);

        if (flags.getBool("check")) {
            if (report.items < 1)
                fail("check: no items in the trace");
            if (!(report.overlap_efficiency > 0.0 &&
                  report.overlap_efficiency <= 1.0))
                fail("check: overlap efficiency " +
                     std::to_string(report.overlap_efficiency) +
                     " outside (0, 1]");
            if (report.dominant_stage.empty())
                fail("check: no dominant stage identified");
            for (const std::string &stage :
                 splitCommas(flags.getString("expect-stages"))) {
                const bool present = std::any_of(
                    report.stages.begin(), report.stages.end(),
                    [&](const obs::CpStageReport &s) {
                        return s.stage == stage;
                    });
                if (!present)
                    fail("check: expected stage \"" + stage +
                         "\" not in the trace");
            }
            std::printf("buffalo_profile: check ok\n");
        }
    } catch (const std::exception &error) {
        fail(error.what());
    }
    return 0;
}
