/**
 * @file
 * buffalo_graphgen — synthetic graph / dataset generation CLI.
 *
 *   buffalo_graphgen --family ba --nodes 10000 --m 5 \
 *                    --out graph.txt
 *   buffalo_graphgen --dataset products --scale 0.5 \
 *                    --out-bundle products.bufd
 *
 * Pairs with buffalo_train's --edge-list / --bundle inputs.
 */
#include <cstdio>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"
#include <map>

#include "util/errors.h"
#include "util/flags.h"
#include "util/format.h"

using namespace buffalo;

namespace {

const char *const kUsage = R"(buffalo_graphgen — graph generation CLI

generator (pick one):
  --family NAME      ba | er | ws | rmat | community     [ba]
  --dataset NAME     built-in sim instead of a raw family
family parameters:
  --nodes N          node count                          [10000]
  --m N              BA/community edges per node         [5]
  --p X              ER edge prob / WS rewire / community
                     intra probability                   [0.1]
  --k N              WS neighbors per side               [2]
  --edges N          RMAT edge count                     [nodes*8]
  --community N      community size                      [32]
  --seed N           RNG seed                            [42]
  --scale X          built-in dataset scale              [1.0]
output:
  --out PATH         write a text edge list
  --out-bundle PATH  write a dataset bundle (--dataset only)
  --stats            print degree/clustering/power-law stats
  --help             this text
)";

} // namespace

int
main(int argc, char **argv)
{
    try {
        util::Flags flags(argc, argv);
        if (flags.has("help")) {
            std::fputs(kUsage, stdout);
            return 0;
        }
        flags.checkKnown({"family", "dataset", "nodes", "m", "p", "k",
                          "edges", "community", "seed", "scale",
                          "out", "out-bundle", "stats", "help"});

        util::Rng rng(flags.getInt("seed", 42));
        graph::CsrGraph graph;

        if (flags.has("dataset")) {
            const std::map<std::string, graph::DatasetId> by_name = {
                {"cora", graph::DatasetId::Cora},
                {"pubmed", graph::DatasetId::Pubmed},
                {"reddit", graph::DatasetId::Reddit},
                {"arxiv", graph::DatasetId::Arxiv},
                {"products", graph::DatasetId::Products},
                {"papers", graph::DatasetId::Papers},
            };
            auto it = by_name.find(flags.getString("dataset"));
            checkArgument(it != by_name.end(), "unknown --dataset");
            graph::Dataset data = graph::loadDataset(
                it->second,
                static_cast<std::uint64_t>(flags.getInt("seed", 42)),
                flags.getDouble("scale", 1.0));
            graph = data.graph();
            if (flags.has("out-bundle")) {
                graph::saveDatasetFile(flags.getString("out-bundle"),
                                       data);
                std::printf("bundle written to %s\n",
                            flags.getString("out-bundle").c_str());
            }
        } else {
            const std::string family =
                flags.getString("family", "ba");
            const auto nodes = static_cast<graph::NodeId>(
                flags.getInt("nodes", 10000));
            if (family == "ba") {
                graph = graph::generateBarabasiAlbert(
                    nodes,
                    static_cast<graph::NodeId>(flags.getInt("m", 5)),
                    rng);
            } else if (family == "er") {
                graph = graph::generateErdosRenyi(
                    nodes, flags.getDouble("p", 0.1), rng);
            } else if (family == "ws") {
                graph = graph::generateWattsStrogatz(
                    nodes,
                    static_cast<graph::NodeId>(flags.getInt("k", 2)),
                    flags.getDouble("p", 0.1), rng);
            } else if (family == "rmat") {
                graph = graph::generateRmat(
                    nodes,
                    static_cast<graph::EdgeIndex>(
                        flags.getInt("edges", flags.getInt("nodes",
                                                           10000) *
                                                  8)),
                    0.57, 0.19, 0.19, rng);
            } else if (family == "community") {
                graph = graph::generateCommunityPowerLaw(
                    nodes,
                    static_cast<graph::NodeId>(
                        flags.getInt("community", 32)),
                    flags.getDouble("p", 0.4),
                    static_cast<graph::NodeId>(flags.getInt("m", 5)),
                    rng);
            } else {
                throw InvalidArgument("unknown --family '" + family +
                                      "'");
            }
        }

        std::printf("graph: %u nodes, %llu directed edges, avg "
                    "degree %.2f\n",
                    graph.numNodes(),
                    static_cast<unsigned long long>(graph.numEdges()),
                    graph::averageDegree(graph));

        if (flags.getBool("stats")) {
            util::Rng stat_rng(1);
            auto fit = graph::fitPowerLaw(graph);
            std::printf(
                "max degree %llu, clustering %.4f, power-law %s "
                "(alpha %.2f)\n",
                static_cast<unsigned long long>(graph.maxDegree()),
                graph::sampledClusteringCoefficient(graph, 500,
                                                    stat_rng),
                fit.is_power_law ? "yes" : "no", fit.alpha);
        }
        if (flags.has("out")) {
            graph::writeEdgeListFile(flags.getString("out"), graph);
            std::printf("edge list written to %s\n",
                        flags.getString("out").c_str());
        }
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
