/**
 * @file
 * CLI front-end of obs::compareBenchFiles (DESIGN.md, "Memory audit &
 * bench regression"):
 *
 *   bench_diff <baseline.json> <candidate.json>
 *
 * Compares a candidate BENCH_*.json against a committed baseline;
 * every baseline metric must be present in the candidate and within
 * the baseline's per-metric relative tolerance. Exit codes: 0 = all
 * metrics within tolerance, 1 = regression (drift or missing metric),
 * 2 = usage / unreadable / malformed input. ci.sh gates the smoke
 * bench with this tool.
 */
#include <cstdio>

#include "obs/bench_compare.h"
#include "util/errors.h"

int
main(int argc, char **argv)
{
    using namespace buffalo;

    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: bench_diff <baseline.json> "
                     "<candidate.json>\n");
        return 2;
    }
    try {
        const obs::BenchCompareResult result =
            obs::compareBenchFiles(argv[1], argv[2]);
        std::fputs(obs::formatBenchCompare(result).c_str(), stdout);
        return result.ok() ? 0 : 1;
    } catch (const Error &e) {
        std::fprintf(stderr, "bench_diff: %s\n", e.what());
        return 2;
    }
}
