/**
 * @file
 * buffalo_serve — batched online GNN inference server driver.
 *
 * Spins up a serve::Server over a dataset, drives it with client
 * threads at a fixed offered QPS, and reports tail latency, goodput,
 * and shed rate. Weights come from a buffalo_train checkpoint:
 *
 *   buffalo_train --dataset arxiv --model sage --epochs 2 \
 *                 --save-checkpoint model.ckpt
 *   buffalo_serve --dataset arxiv --model sage \
 *                 --checkpoint model.ckpt --qps 200 --clients 4 \
 *                 --deadline-ms 100 --duration-s 10
 *
 * Run with --help for the full flag list.
 */
#include <chrono>
#include <cstdio>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "cli_common.h"
#include "graph/io.h"
#include "obs/event_log.h"
#include "obs/flush.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "serve/serve_loop.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace buffalo;

namespace {

const char *const kUsage = R"(buffalo_serve — Buffalo online inference server

input:
  --dataset NAME        built-in sim: cora, pubmed, reddit, arxiv,
                        products, papers           [default: arxiv]
  --bundle PATH         dataset bundle from buffalo_train
  --scale X             node-count scale of the built-in sim [0.25]
model:
  --model NAME          sage | gcn | gat                     [sage]
  --aggregator NAME     mean | pool | lstm | gcn (sage only) [mean]
  --layers N            aggregation depth                    [2]
  --hidden N            hidden width                         [32]
  --heads N             attention heads (gat)                [1]
  --fanouts A,B,...     per-layer fanouts, input-most first  [10,25]
  --checkpoint P        load model weights from P (else the seed
                        initialization is served)
serving:
  --qps X               offered load, requests/second        [100]
  --clients N           client threads generating load       [2]
  --duration-s X        seconds to run                       [5]
  --requests N          stop after N requests (0 = duration) [0]
  --deadline-ms X       per-request latency SLO              [100]
  --queue-capacity N    admission queue depth                [256]
  --max-batch N         requests coalesced per micro-batch   [32]
  --byte-budget X       in-flight batch working-set cap, MiB
                        (0 = off)                            [0]
  --feature-cache-mb X  prep-path feature cache size; hits skip
                        feature fills (0 = off)              [0]
  --cache-policy NAME   hot-set policy: lru | degree |
                        presample                        [degree]
  --pinned-hot N        cap on policy-pinned nodes (0 = fill
                        the cache capacity)                  [0]
  --presample-batches N micro-batches the startup presample
                        pass samples (presample policy)      [8]
  --prep-threads N      sampling/blockgen/feature threads    [1]
  --workers N           forward-pass threads (model replicas)[1]
  --prepared-depth N    prepared batches buffered ahead      [4]
  --kernel-threads N    compute-kernel worker threads; 0 uses
                        hardware concurrency, 1 forces serial [0]
  --kernel-tile-n N     GEMM tile width (columns), [1,4096]  [64]
  --kernel-tile-k N     GEMM tile depth (k), [1,4096]       [128]
  --kernel-simd NAME    wide-ISA kernels: auto | off | on
                        (on fails fast without AVX2/NEON) [auto]
  --seed N              RNG seed (model init + sampling)     [42]
observability:
  --trace-out P         write a Chrome trace-event JSON
  --trace-ring N        spans each thread's trace ring retains
                        before overwriting oldest            [65536]
  --metrics-json P      write the metrics registry as flat JSON
  --run-log P           write structured JSONL run events
ci:
  --require-goodput     exit nonzero unless goodput > 0 and no
                        request failed
  --verbose             info-level logging
  --help                this text
)";

graph::Dataset
loadInput(const util::Flags &flags)
{
    if (flags.has("bundle"))
        return graph::loadDatasetBundleFile(
            flags.getString("bundle"));
    return graph::loadDataset(
        tools::datasetIdFromName(flags.getString("dataset", "arxiv")),
        static_cast<std::uint64_t>(flags.getInt("seed", 42)),
        flags.getDouble("scale", 0.25));
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        util::Flags flags(argc, argv);
        if (flags.has("help")) {
            std::fputs(kUsage, stdout);
            return 0;
        }
        std::set<std::string> known = {
            "dataset", "bundle", "scale",
            "model", "aggregator", "layers", "hidden", "heads",
            "fanouts", "checkpoint",
            "qps", "clients", "duration-s", "requests",
            "deadline-ms", "queue-capacity", "max-batch",
            "byte-budget", "prep-threads", "workers",
            "prepared-depth", "seed",
            "trace-out", "trace-ring", "metrics-json", "run-log",
            "require-goodput", "verbose", "help",
        };
        known.insert(tools::cacheFlagNames().begin(),
                     tools::cacheFlagNames().end());
        known.insert(tools::kernelFlagNames().begin(),
                     tools::kernelFlagNames().end());
        flags.checkKnown(known);
        if (flags.getBool("verbose"))
            util::setLogLevel(util::LogLevel::Info);

        graph::Dataset data = loadInput(flags);
        std::printf("dataset %s: %u nodes, %llu edges, %d classes\n",
                    data.name().c_str(), data.graph().numNodes(),
                    static_cast<unsigned long long>(
                        data.graph().numEdges()),
                    data.numClasses());

        serve::ServeOptions options;
        const std::string model = flags.getString("model", "sage");
        if (model == "sage")
            options.model_kind = train::ModelKind::Sage;
        else if (model == "gcn")
            options.model_kind = train::ModelKind::Gcn;
        else if (model == "gat")
            options.model_kind = train::ModelKind::Gat;
        else
            throw InvalidArgument("unknown --model '" + model + "'");
        options.model.aggregator = nn::aggregatorFromName(
            flags.getString("aggregator", "mean"));
        options.model.num_layers =
            static_cast<int>(flags.getInt("layers", 2));
        options.model.feature_dim = data.featureDim();
        options.model.hidden_dim =
            static_cast<int>(flags.getInt("hidden", 32));
        options.model.num_classes = data.numClasses();
        options.model.num_heads =
            static_cast<int>(flags.getInt("heads", 1));
        options.fanouts =
            tools::parseFanouts(flags.getString("fanouts", "10,25"));
        options.checkpoint = flags.getString("checkpoint", "");
        options.queue_capacity = static_cast<std::size_t>(
            flags.getInt("queue-capacity", 256));
        options.max_batch = static_cast<std::size_t>(
            flags.getInt("max-batch", 32));
        options.byte_budget =
            util::mib(flags.getDouble("byte-budget", 0.0));
        options.deadline_ms = flags.getDouble("deadline-ms", 100.0);
        const tools::CacheCliOptions cache =
            tools::parseCacheFlags(flags);
        options.feature_cache_bytes = cache.capacity_bytes;
        options.cache_policy = cache.policy;
        options.cache_pinned_nodes = cache.pinned_hot_nodes;
        options.presample_batches = cache.presample_batches;
        options.prep_threads = static_cast<std::size_t>(
            flags.getInt("prep-threads", 1));
        options.workers =
            static_cast<std::size_t>(flags.getInt("workers", 1));
        options.prepared_depth = static_cast<std::size_t>(
            flags.getInt("prepared-depth", 4));
        options.seed =
            static_cast<std::uint64_t>(flags.getInt("seed", 42));
        options.kernels = tools::parseKernelConfig(flags);
        tensor::kernels::setConfig(options.kernels);

        const double qps = flags.getDouble("qps", 100.0);
        const std::size_t clients = static_cast<std::size_t>(
            flags.getInt("clients", 2) < 1
                ? 1
                : flags.getInt("clients", 2));
        const double duration_s =
            flags.getDouble("duration-s", 5.0);
        const std::uint64_t max_requests = static_cast<std::uint64_t>(
            flags.getInt("requests", 0));
        checkArgument(qps > 0.0, "--qps must be > 0");

        if (flags.has("trace-ring"))
            obs::tracer().setRingCapacity(static_cast<std::size_t>(
                flags.getInt("trace-ring", 1 << 16)));
        if (flags.has("trace-out"))
            obs::tracer().enable();
        if (flags.has("run-log")) {
            obs::eventLog().open(flags.getString("run-log"));
            obs::eventLog()
                .event(obs::names::kEvRunBegin)
                .field("dataset", data.name())
                .field("model", model)
                .field("qps", qps)
                .field("clients",
                       static_cast<std::uint64_t>(clients))
                .field("deadline_ms", options.deadline_ms);
        }
        // Serving runs get killed mid-flight (deploys, load tests);
        // the exit flusher keeps --run-log/--metrics-json complete.
        if (flags.has("metrics-json"))
            obs::exitFlush().registerMetricsJson(
                flags.getString("metrics-json"));
        if (flags.has("run-log") || flags.has("metrics-json"))
            obs::exitFlush().arm();

        serve::Server server(options, data);

        // Fixed-rate open-loop clients: each thread owns a slice of
        // the offered QPS and keeps to its own send schedule, so a
        // slow server sheds load instead of slowing the clients.
        const auto t0 = serve::Clock::now();
        std::vector<std::thread> client_threads;
        std::vector<std::vector<std::future<serve::InferenceResponse>>>
            futures(clients);
        const std::uint64_t per_client_cap =
            max_requests > 0
                ? (max_requests + clients - 1) / clients
                : 0;
        for (std::size_t c = 0; c < clients; ++c) {
            // buffalo-lint: allow(escape-ref-capture) client threads
            // are joined below before the captured locals go away
            client_threads.emplace_back([&, c] {
                util::Rng rng(options.seed ^ (0xC11E27ull + c));
                const double interval_s =
                    static_cast<double>(clients) / qps;
                const auto interval = std::chrono::duration_cast<
                    serve::Clock::duration>(
                    std::chrono::duration<double>(interval_s));
                auto next_send = t0 + (interval * c) / clients;
                const auto end =
                    t0 + std::chrono::duration_cast<
                             serve::Clock::duration>(
                             std::chrono::duration<double>(
                                 duration_s));
                std::uint64_t sent = 0;
                while (serve::Clock::now() < end &&
                       (per_client_cap == 0 ||
                        sent < per_client_cap)) {
                    std::this_thread::sleep_until(next_send);
                    next_send += interval;
                    const auto seed_node =
                        static_cast<graph::NodeId>(rng.nextBounded(
                            data.graph().numNodes()));
                    futures[c].push_back(server.submit(seed_node));
                    ++sent;
                }
            });
        }
        for (std::thread &thread : client_threads)
            thread.join();
        // Wait out the in-flight tail, then stop the pipeline.
        std::size_t failed = 0;
        for (auto &client_futures : futures)
            for (auto &future : client_futures)
                if (future.get().status ==
                    serve::ResponseStatus::Failed)
                    ++failed;
        server.shutdown();

        const serve::ServeSnapshot snap = server.stats();
        std::printf(
            "served %llu/%llu ok (%llu shed, %llu expired, %llu "
            "errors) in %.2fs\n",
            static_cast<unsigned long long>(snap.completed),
            static_cast<unsigned long long>(snap.submitted),
            static_cast<unsigned long long>(snap.shed),
            static_cast<unsigned long long>(snap.expired),
            static_cast<unsigned long long>(snap.errors),
            snap.elapsed_seconds);
        std::printf(
            "goodput %.1f qps (offered %.1f), shed rate %.2f%%, "
            "deadline misses %llu\n",
            snap.goodput_qps, qps, snap.shed_rate * 100.0,
            static_cast<unsigned long long>(snap.deadline_misses));
        std::printf(
            "latency ms: p50 %.2f  p99 %.2f  p999 %.2f "
            "(queue p99 %.2f, mean batch %.1f, max queue depth "
            "%zu)\n",
            snap.latency_p50_ms, snap.latency_p99_ms,
            snap.latency_p999_ms, snap.queue_p99_ms,
            snap.mean_batch_size, server.maxQueueDepth());
        if (const pipeline::FeatureCache *cache =
                server.featureCache()) {
            const pipeline::FeatureCacheStats cs = cache->stats();
            std::printf(
                "cache (%s policy): %.1f%% hit rate, %llu hits / "
                "%llu misses, %llu pinned of %llu resident\n",
                cs.policy, cs.hitRate() * 100.0,
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.pinned_nodes),
                static_cast<unsigned long long>(cs.resident_nodes));
        }

        if (flags.has("run-log")) {
            obs::eventLog()
                .event(obs::names::kEvServeSummary)
                .field("submitted", snap.submitted)
                .field("completed", snap.completed)
                .field("shed", snap.shed)
                .field("expired", snap.expired)
                .field("errors", snap.errors)
                .field("goodput_qps", snap.goodput_qps)
                .field("p99_ms", snap.latency_p99_ms);
            // Per-thread ring accounting: one tracer.ring event per
            // thread that lost spans.
            for (const obs::ThreadDropReport &drop :
                 obs::tracer().droppedByThread()) {
                if (drop.dropped == 0)
                    continue;
                obs::eventLog()
                    .event(obs::names::kEvTracerRing)
                    .field("tid",
                           static_cast<std::uint64_t>(drop.tid))
                    .field("dropped", drop.dropped)
                    .field("capacity",
                           static_cast<std::uint64_t>(
                               obs::tracer().ringCapacity()));
            }
            obs::eventLog()
                .event(obs::names::kEvRunEnd)
                .field("elapsed_seconds", snap.elapsed_seconds);
        }
        obs::metrics()
            .gauge(obs::names::kGaugeTracerDroppedSpans)
            .set(static_cast<double>(obs::tracer().droppedSpans()));
        if (flags.has("trace-out")) {
            obs::tracer().disable();
            obs::tracer().writeJson(flags.getString("trace-out"));
            std::printf("trace written to %s (%zu spans)\n",
                        flags.getString("trace-out").c_str(),
                        obs::tracer().spanCount());
        }
        // Single flush path for clean and early exits alike: emits
        // run.flush, closes the run log, writes the metrics JSON.
        obs::exitFlush().flush();
        if (flags.has("metrics-json"))
            std::printf("metrics written to %s\n",
                        flags.getString("metrics-json").c_str());
        if (flags.has("run-log"))
            std::printf("run log written to %s\n",
                        flags.getString("run-log").c_str());

        if (flags.getBool("require-goodput")) {
            if (snap.goodput_qps <= 0.0 || snap.errors > 0 ||
                failed > 0) {
                std::fprintf(stderr,
                             "require-goodput: goodput %.1f qps, "
                             "%llu errors, %zu failed futures\n",
                             snap.goodput_qps,
                             static_cast<unsigned long long>(
                                 snap.errors),
                             failed);
                return 1;
            }
        }
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
