/**
 * @file
 * Flag parsing shared by buffalo_train and buffalo_serve.
 *
 * The two CLIs accept the same vocabulary for fanouts, built-in
 * dataset names, the feature-cache knobs (--feature-cache-mb,
 * --cache-policy, --pinned-hot, --presample-batches), and the kernel
 * knobs (--kernel-threads, --kernel-tile-n, --kernel-tile-k,
 * --kernel-simd). Parsing them here once means a policy
 * name or a fanout list is guaranteed to mean the same thing in both
 * tools — the API-consistency contract the serving tier relies on
 * when it reuses a training cache configuration.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "pipeline/cache_policy.h"
#include "tensor/kernels.h"
#include "train/report.h"
#include "util/errors.h"
#include "util/flags.h"
#include "util/format.h"

namespace buffalo::tools {

/** Parses a "--fanouts A,B,..." list (input-most layer first). */
inline std::vector<int>
parseFanouts(const std::string &text)
{
    std::vector<int> fanouts;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const auto comma = text.find(',', begin);
        const std::string item =
            text.substr(begin, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - begin);
        checkArgument(!item.empty(), "bad --fanouts entry");
        fanouts.push_back(std::stoi(item));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return fanouts;
}

/** Resolves a "--dataset NAME" to the built-in sim registry. */
inline graph::DatasetId
datasetIdFromName(const std::string &name)
{
    static const std::map<std::string, graph::DatasetId> by_name = {
        {"cora", graph::DatasetId::Cora},
        {"pubmed", graph::DatasetId::Pubmed},
        {"reddit", graph::DatasetId::Reddit},
        {"arxiv", graph::DatasetId::Arxiv},
        {"products", graph::DatasetId::Products},
        {"papers", graph::DatasetId::Papers},
    };
    auto it = by_name.find(name);
    if (it == by_name.end())
        throw InvalidArgument("unknown --dataset '" + name + "'");
    return it->second;
}

/** The cache flags both CLIs accept, already decoded. */
struct CacheCliOptions
{
    std::uint64_t capacity_bytes = 0;
    train::CachePolicyKind policy = train::CachePolicyKind::Degree;
    std::size_t pinned_hot_nodes = 0;
    int presample_batches = 8;
};

/**
 * Decodes --feature-cache-mb / --cache-policy / --pinned-hot /
 * --presample-batches with identical defaults in both CLIs.
 */
inline CacheCliOptions
parseCacheFlags(const util::Flags &flags)
{
    CacheCliOptions cache;
    cache.capacity_bytes =
        util::mib(flags.getDouble("feature-cache-mb", 0.0));
    cache.policy = pipeline::cachePolicyKindFromName(
        flags.getString("cache-policy", "degree"));
    cache.pinned_hot_nodes =
        static_cast<std::size_t>(flags.getInt("pinned-hot", 0));
    cache.presample_batches =
        static_cast<int>(flags.getInt("presample-batches", 8));
    checkArgument(cache.presample_batches >= 0,
                  "--presample-batches must be >= 0");
    return cache;
}

/** Flag names parseCacheFlags() consumes (for Flags::checkKnown). */
inline const std::vector<std::string> &
cacheFlagNames()
{
    static const std::vector<std::string> names = {
        "feature-cache-mb",
        "cache-policy",
        "pinned-hot",
        "presample-batches",
    };
    return names;
}

/**
 * Decodes the kernel knobs both CLIs accept: --kernel-threads
 * (0 = hardware concurrency), --kernel-tile-n / --kernel-tile-k
 * (GEMM tile shape, bounded so a typo cannot silently serialize or
 * blow the pack buffer), and --kernel-simd (auto | off | on; "on"
 * fails fast at setConfig() when the build or CPU lacks the wide
 * ISA). Defaults match KernelConfig's field initializers, so running
 * without flags is identical to never calling setConfig.
 */
inline tensor::kernels::KernelConfig
parseKernelConfig(const util::Flags &flags)
{
    namespace kernels = tensor::kernels;
    kernels::KernelConfig cfg;
    const std::int64_t threads = flags.getInt("kernel-threads", 0);
    checkArgument(threads >= 0, "--kernel-threads must be >= 0");
    cfg.threads = static_cast<std::size_t>(threads);
    const std::int64_t tile_n = flags.getInt(
        "kernel-tile-n", static_cast<std::int64_t>(cfg.tile_n));
    const std::int64_t tile_k = flags.getInt(
        "kernel-tile-k", static_cast<std::int64_t>(cfg.tile_k));
    checkArgument(tile_n >= 1 && tile_n <= 4096,
                  "--kernel-tile-n must be in [1, 4096]");
    checkArgument(tile_k >= 1 && tile_k <= 4096,
                  "--kernel-tile-k must be in [1, 4096]");
    cfg.tile_n = static_cast<std::size_t>(tile_n);
    cfg.tile_k = static_cast<std::size_t>(tile_k);
    cfg.simd = kernels::simdModeFromName(
        flags.getString("kernel-simd", "auto"));
    return cfg;
}

/** Flag names parseKernelConfig() consumes (for Flags::checkKnown). */
inline const std::vector<std::string> &
kernelFlagNames()
{
    static const std::vector<std::string> names = {
        "kernel-threads",
        "kernel-tile-n",
        "kernel-tile-k",
        "kernel-simd",
    };
    return names;
}

} // namespace buffalo::tools
