#!/usr/bin/env bash
# CI driver: build + test the Release config, then rebuild the
# concurrent pipeline subsystem under ThreadSanitizer and re-run the
# test suite (cheap races in StageQueue/Prefetcher show up here long
# before they show up in production runs).
#
# Usage: tools/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tests ==="
cmake -B "${prefix}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}-release" -j "${jobs}"
ctest --test-dir "${prefix}-release" --output-on-failure -j "${jobs}"

echo "=== Observability smoke epoch ==="
obs_dir="${prefix}-release/obs-smoke"
mkdir -p "${obs_dir}"
"${prefix}-release/tools/buffalo_train" \
    --dataset arxiv --scale 0.05 --epochs 1 --batch-size 128 \
    --pipeline --feature-cache-mb 8 \
    --trace-out "${obs_dir}/trace.json" \
    --metrics-json "${obs_dir}/metrics.json"
"${prefix}-release/tools/obs_validate" \
    --trace "${obs_dir}/trace.json" \
    --expect-spans "train.epoch,train.iteration,pipeline.sample" \
    --metrics "${obs_dir}/metrics.json" \
    --expect-metrics "train.epochs,scheduler.schedules,device.peak_bytes"

echo "=== ThreadSanitizer build + tests ==="
cmake -B "${prefix}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBUFFALO_SANITIZE=thread
cmake --build "${prefix}-tsan" -j "${jobs}"
# SlightlyFaster compares measured wall-clock between runs, which
# TSan's interception slows too unevenly to keep meaningful.
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "${jobs}" \
    -E "SlightlyFaster"

echo "=== ci.sh: all green ==="
