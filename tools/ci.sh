#!/usr/bin/env bash
# CI driver — the full static-analysis and sanitizer matrix
# (DESIGN.md, "Static analysis & sanitizer matrix"):
#
#   1. Release build + full test suite + lint leg (buffalo_lint over
#      src/ and the ci.sh expectation lists) + observability smoke
#      epoch gated by obs_validate (trace, metrics, JSONL run log,
#      memory-audit error bound) + serving smoke (short fixed-QPS
#      buffalo_serve run asserting nonzero goodput and zero errors,
#      gated by obs_validate `@serve`) + buffalo_profile critical-
#      path gates over both smokes' artifacts (all stages present,
#      dominant stage identified, overlap efficiency in (0, 1]) +
#      bench-smoke, bench-kernels, bench-fig12,
#      bench-serve and bench-pipeline regression legs gated by
#      bench_diff against the committed baselines. Both smokes enable
#      the feature cache with the presample policy and expect the
#      `@cache` observability names.
#   2. Scalar build + tests with -DBUFFALO_SIMD=OFF: the wide-ISA
#      kernel path is compiled out, so the dispatch must fall back to
#      scalar lanes and every bitwise-determinism sweep must still
#      hold (the SIMD and scalar paths promise identical bytes).
#   3. ThreadSanitizer build + tests (cheap races in
#      StageQueue/Prefetcher show up here long before they show up in
#      production runs).
#   4. AddressSanitizer+UBSan build + tests (lifetime and
#      undefined-behavior bugs in the tensor/graph kernels).
#
# Sanitizer legs build at the widest SIMD the target has (the
# BUFFALO_SIMD=ON default) so lane loads/stores and the pack-buffer
# indexing run under both tools, and exclude the `perf` CTest label:
# those tests compare measured wall-clock between runs, which
# sanitizer interception slows too unevenly to keep meaningful. The
# scalar leg also skips `perf` — its bench baselines were recorded
# with SIMD on.
#
# Usage: tools/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tests ==="
cmake -B "${prefix}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}-release" -j "${jobs}"
ctest --test-dir "${prefix}-release" --output-on-failure -j "${jobs}"

echo "=== Project lint ==="
# The linter scans src/, tools/, bench/, and tests/ and writes the
# machine-readable report (rule, file:line, severity, waiver status)
# next to the build artifacts. It exits non-zero on any non-waived
# finding, so this line is the gate; the report is the archive. The
# waiver count is printed so reviewers can watch it — it may only go
# down.
"${prefix}-release/tools/buffalo_lint" --root . \
    --json-out "${prefix}-release/lint_report.json"
python3 - "${prefix}-release/lint_report.json" <<'PY'
import json, sys
counts = json.load(open(sys.argv[1]))["counts"]
print(f"lint report: {counts['total']} findings "
      f"({counts['active']} active, {counts['waived']} waived)")
PY

echo "=== Observability smoke epoch ==="
obs_dir="${prefix}-release/obs-smoke"
mkdir -p "${obs_dir}"
"${prefix}-release/tools/buffalo_train" \
    --dataset arxiv --scale 0.1 --epochs 1 --batch-size 256 \
    --aggregator lstm --hidden 32 --budget-mb 16 \
    --pipeline --feature-cache-mb 8 \
    --cache-policy presample --presample-batches 4 \
    --kernel-threads 2 \
    --trace-out "${obs_dir}/trace.json" \
    --metrics-json "${obs_dir}/metrics.json" \
    --run-log "${obs_dir}/run.jsonl" \
    --audit-json "${obs_dir}/audit.json"
# `@core` / `@cache` expand inside obs_validate to the central
# expectation lists in src/obs/names.h, so renames cannot drift past
# CI (`@cache` because the smoke enables the presample cache policy).
# The audit bound needs the LSTM aggregator (the cost model the
# Eq. 1-2 estimator is calibrated against) and a budget tight enough
# to split batches — mean-aggregator runs at tiny scale under-saturate
# Eq. 1 and over-predict well past 25%; see EXPERIMENTS.md ("Known
# scale artifacts").
"${prefix}-release/tools/obs_validate" \
    --trace "${obs_dir}/trace.json" \
    --expect-spans "@core" \
    --metrics "${obs_dir}/metrics.json" \
    --expect-metrics "@core,@cache,@cp" \
    --run-log "${obs_dir}/run.jsonl" \
    --expect-events "@core,@cache,@cp" \
    --audit "${obs_dir}/audit.json" \
    --max-audit-error 0.25
# Critical-path gate: reassemble the smoke epoch's causal span
# chains and require a sane bottleneck report — every pipeline
# stage present, a dominant stage identified, overlap efficiency
# in (0, 1] (DESIGN.md, "Critical-path attribution").
"${prefix}-release/tools/buffalo_profile" \
    --trace "${obs_dir}/trace.json" \
    --run-log "${obs_dir}/run.jsonl" \
    --metrics "${obs_dir}/metrics.json" \
    --json-out "${obs_dir}/profile.json" \
    --check --expect-stages \
    "pipeline.sample,pipeline.build,pipeline.feature,train.iteration"

echo "=== Serving smoke ==="
serve_dir="${prefix}-release/serve-smoke"
mkdir -p "${serve_dir}"
# Short fixed-QPS run: --require-goodput makes buffalo_serve exit
# non-zero unless goodput > 0 with zero errors/failed requests, so
# this leg asserts the whole admission -> batch -> blockgen ->
# forwardInference path works under concurrency. `@serve` expands to
# the serve expectation lists in src/obs/names.h.
"${prefix}-release/tools/buffalo_serve" \
    --dataset cora --scale 0.5 --qps 200 --clients 2 \
    --duration-s 2 --deadline-ms 200 \
    --workers 2 --prep-threads 2 --kernel-threads 2 \
    --feature-cache-mb 4 \
    --cache-policy presample --presample-batches 4 \
    --trace-out "${serve_dir}/trace.json" \
    --metrics-json "${serve_dir}/metrics.json" \
    --run-log "${serve_dir}/run.jsonl" \
    --require-goodput
"${prefix}-release/tools/obs_validate" \
    --trace "${serve_dir}/trace.json" \
    --expect-spans "@serve" \
    --metrics "${serve_dir}/metrics.json" \
    --expect-metrics "@serve,@cache" \
    --run-log "${serve_dir}/run.jsonl" \
    --expect-events "@serve,@cache"
# Critical-path gate over the serve smoke: per-plan prep -> forward
# chains must reassemble into a sane bottleneck report.
"${prefix}-release/tools/buffalo_profile" \
    --trace "${serve_dir}/trace.json" \
    --run-log "${serve_dir}/run.jsonl" \
    --metrics "${serve_dir}/metrics.json" \
    --json-out "${serve_dir}/profile.json" \
    --check --expect-stages "serve.prep,serve.forward"

echo "=== Bench-smoke regression gate ==="
bench_dir="${prefix}-release/bench-smoke"
mkdir -p "${bench_dir}"
BUFFALO_BENCH_DIR="${bench_dir}" "${prefix}-release/bench/bench_smoke"
"${prefix}-release/tools/bench_diff" \
    bench/baselines/BENCH_smoke.json \
    "${bench_dir}/BENCH_smoke.json"
BUFFALO_BENCH_DIR="${bench_dir}" \
    "${prefix}-release/bench/bench_kernels"
"${prefix}-release/tools/bench_diff" \
    bench/baselines/BENCH_kernels.json \
    "${bench_dir}/BENCH_kernels.json"
BUFFALO_BENCH_DIR="${bench_dir}" \
    "${prefix}-release/bench/bench_serve"
"${prefix}-release/tools/bench_diff" \
    bench/baselines/BENCH_serve.json \
    "${bench_dir}/BENCH_serve.json"
BUFFALO_BENCH_DIR="${bench_dir}" \
    "${prefix}-release/bench/bench_pipeline"
"${prefix}-release/tools/bench_diff" \
    bench/baselines/BENCH_pipeline.json \
    "${bench_dir}/BENCH_pipeline.json"
# Block-generation gate: the in-run parallel-construction speedup
# (flat-table generator on a 4-worker pool vs the pre-rewrite
# hash-map reference) plus the Figure-12 summary. The empty filter
# skips the google-benchmark loops; the gated numbers come from the
# direct measurements.
BUFFALO_BENCH_DIR="${bench_dir}" \
    "${prefix}-release/bench/bench_fig12_blockgen" \
    --benchmark_filter='^$'
"${prefix}-release/tools/bench_diff" \
    bench/baselines/BENCH_fig12.json \
    "${bench_dir}/BENCH_fig12.json"

echo "=== Scalar (BUFFALO_SIMD=OFF) build + tests ==="
# The same tree with the wide-ISA TU compiled as scalar lanes: the
# dispatch layer must route every kernel to the scalar path and the
# full determinism suite must pass untouched. --kernel-simd on is
# rejected in this configuration (covered by the unit tests, which
# key off kernels::simdAvailable()).
cmake -B "${prefix}-scalar" -S . -DCMAKE_BUILD_TYPE=Release \
    -DBUFFALO_SIMD=OFF
cmake --build "${prefix}-scalar" -j "${jobs}"
ctest --test-dir "${prefix}-scalar" --output-on-failure \
    -j "${jobs}" -LE perf

echo "=== ThreadSanitizer build + tests ==="
cmake -B "${prefix}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBUFFALO_SANITIZE=thread -DBUFFALO_SIMD=ON
cmake --build "${prefix}-tsan" -j "${jobs}"
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "${jobs}" \
    -LE perf

echo "=== AddressSanitizer+UBSan build + tests ==="
cmake -B "${prefix}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBUFFALO_SANITIZE=address,undefined -DBUFFALO_SIMD=ON
cmake --build "${prefix}-asan" -j "${jobs}"
ctest --test-dir "${prefix}-asan" --output-on-failure -j "${jobs}" \
    -LE perf

echo "=== ci.sh: all green ==="
