#!/usr/bin/env bash
# CI driver — the full static-analysis and sanitizer matrix
# (DESIGN.md, "Static analysis & sanitizer matrix"):
#
#   1. Release build + full test suite + lint leg (buffalo_lint over
#      src/ and the ci.sh expectation lists) + observability smoke
#      epoch gated by obs_validate.
#   2. ThreadSanitizer build + tests (cheap races in
#      StageQueue/Prefetcher show up here long before they show up in
#      production runs).
#   3. AddressSanitizer+UBSan build + tests (lifetime and
#      undefined-behavior bugs in the tensor/graph kernels).
#
# Sanitizer legs exclude the `perf` CTest label: those tests compare
# measured wall-clock between runs, which sanitizer interception
# slows too unevenly to keep meaningful.
#
# Usage: tools/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== Release build + tests ==="
cmake -B "${prefix}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}-release" -j "${jobs}"
ctest --test-dir "${prefix}-release" --output-on-failure -j "${jobs}"

echo "=== Project lint ==="
"${prefix}-release/tools/buffalo_lint" --root .

echo "=== Observability smoke epoch ==="
obs_dir="${prefix}-release/obs-smoke"
mkdir -p "${obs_dir}"
"${prefix}-release/tools/buffalo_train" \
    --dataset arxiv --scale 0.05 --epochs 1 --batch-size 128 \
    --pipeline --feature-cache-mb 8 \
    --trace-out "${obs_dir}/trace.json" \
    --metrics-json "${obs_dir}/metrics.json"
# `@core` expands inside obs_validate to the central expectation
# lists in src/obs/names.h, so renames cannot drift past CI.
"${prefix}-release/tools/obs_validate" \
    --trace "${obs_dir}/trace.json" \
    --expect-spans "@core" \
    --metrics "${obs_dir}/metrics.json" \
    --expect-metrics "@core"

echo "=== ThreadSanitizer build + tests ==="
cmake -B "${prefix}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBUFFALO_SANITIZE=thread
cmake --build "${prefix}-tsan" -j "${jobs}"
ctest --test-dir "${prefix}-tsan" --output-on-failure -j "${jobs}" \
    -LE perf

echo "=== AddressSanitizer+UBSan build + tests ==="
cmake -B "${prefix}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBUFFALO_SANITIZE=address,undefined
cmake --build "${prefix}-asan" -j "${jobs}"
ctest --test-dir "${prefix}-asan" --output-on-failure -j "${jobs}" \
    -LE perf

echo "=== ci.sh: all green ==="
