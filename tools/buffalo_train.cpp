/**
 * @file
 * buffalo_train — command-line training driver.
 *
 * Train a GNN on a built-in simulated dataset, a custom edge list, or
 * a saved dataset bundle, under a GPU memory budget, and optionally
 * checkpoint the resulting model:
 *
 *   buffalo_train --dataset arxiv --model sage --aggregator lstm \
 *                 --budget-mb 64 --epochs 4 --batch-size 256 \
 *                 --save-checkpoint model.ckpt
 *
 *   buffalo_train --edge-list graph.txt --classes 8 --feature-dim 64 \
 *                 --model gcn --budget-mb 32
 *
 * Run with --help for the full flag list.
 */
#include <cstdio>
#include <set>

#include "cli_common.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "nn/checkpoint.h"
#include "obs/audit.h"
#include "obs/event_log.h"
#include "obs/flush.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "pipeline/pipeline_trainer.h"
#include "train/evaluator.h"
#include "train/experiment.h"
#include "train/trainer.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/logging.h"

using namespace buffalo;

namespace {

const char *const kUsage = R"(buffalo_train — Buffalo GNN training CLI

input (pick one):
  --dataset NAME        built-in sim: cora, pubmed, reddit, arxiv,
                        products, papers           [default: arxiv]
  --edge-list PATH      text edge list ("src dst" per line)
  --bundle PATH         dataset bundle from --save-bundle
dataset options:
  --scale X             node-count scale of the built-in sim [0.25]
  --classes N           label classes for --edge-list        [8]
  --feature-dim N       feature width for --edge-list        [64]
model:
  --model NAME          sage | gcn | gat                     [sage]
  --aggregator NAME     mean | pool | lstm | gcn (sage only) [mean]
  --layers N            aggregation depth                    [2]
  --hidden N            hidden width                         [32]
  --heads N             attention heads (gat)                [1]
  --fanouts A,B,...     per-layer fanouts, input-most first  [10,25]
training:
  --budget-mb N         simulated GPU memory budget          [64]
  --epochs N            training epochs                      [4]
  --batch-size N        seeds per batch                      [256]
  --lr X                learning rate                        [5e-3]
  --seed N              RNG seed                             [42]
  --system NAME         buffalo | whole | betty              [buffalo]
  --betty-k N           Betty micro-batch count              [4]
  --cost-model          analytic execution (no numeric math)
  --kernel-threads N    compute-kernel worker threads; 0 uses
                        hardware concurrency, 1 forces serial [0]
  --kernel-tile-n N     GEMM tile width (columns), [1,4096]  [64]
  --kernel-tile-k N     GEMM tile depth (k), [1,4096]       [128]
  --kernel-simd NAME    wide-ISA kernels: auto | off | on
                        (on fails fast without AVX2/NEON) [auto]
pipeline (requires --system buffalo):
  --pipeline            prefetch batches while training
  --prefetch-depth N    batches prepared ahead               [2]
  --feature-cache-mb X  host feature cache size (0 = off)    [0]
  --cache-policy NAME   hot-set policy: lru | degree |
                        presample                        [degree]
  --pinned-hot N        cap on policy-pinned nodes (0 = fill
                        the cache capacity)                  [0]
  --presample-batches N micro-batches the startup presample
                        pass samples (presample policy)      [8]
  --host-budget-mb X    staged host memory cap (0 = off)     [0]
observability:
  --trace-out P         write a Chrome trace-event JSON (load in
                        about://tracing or Perfetto)
  --trace-ring N        spans each thread's trace ring retains
                        before overwriting oldest            [65536]
  --metrics-json P      write the metrics registry as flat JSON
  --metrics-table       print the metrics registry as tables
  --run-log P           write structured JSONL run events (schedule
                        decisions, OOM retries, epoch summaries) to P
  --audit-json P        write predicted-vs-actual memory audit JSON
                        (Buffalo schedulers only)
output:
  --save-checkpoint P   write model parameters after training
  --load-checkpoint P   initialize model parameters from P
  --save-bundle P       write the dataset as a reloadable bundle
  --eval                report held-out accuracy after training
  --verbose             info-level logging
  --help                this text
)";

graph::Dataset
loadInput(const util::Flags &flags)
{
    if (flags.has("edge-list")) {
        graph::CsrGraph g = graph::readEdgeListFile(
            flags.getString("edge-list"));
        const int classes =
            static_cast<int>(flags.getInt("classes", 8));
        // Structure-correlated labels via id buckets (users with real
        // labels should build a bundle via the library API instead).
        std::vector<std::int32_t> labels(g.numNodes());
        for (graph::NodeId u = 0; u < g.numNodes(); ++u)
            labels[u] = static_cast<std::int32_t>(
                static_cast<std::uint64_t>(u) * classes /
                std::max<graph::NodeId>(g.numNodes(), 1));
        util::Rng rng(flags.getInt("seed", 42));
        const double coefficient =
            graph::sampledClusteringCoefficient(g, 400, rng);
        return graph::makeDataset(
            flags.getString("edge-list"), std::move(g),
            std::move(labels), classes,
            static_cast<int>(flags.getInt("feature-dim", 64)),
            coefficient,
            static_cast<std::uint64_t>(flags.getInt("seed", 42)));
    }
    if (flags.has("bundle"))
        return graph::loadDatasetBundleFile(flags.getString("bundle"));

    return graph::loadDataset(
        tools::datasetIdFromName(flags.getString("dataset", "arxiv")),
        static_cast<std::uint64_t>(flags.getInt("seed", 42)),
        flags.getDouble("scale", 0.25));
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        util::Flags flags(argc, argv);
        if (flags.has("help")) {
            std::fputs(kUsage, stdout);
            return 0;
        }
        std::set<std::string> known = {
            "dataset", "edge-list", "bundle", "scale", "classes",
            "feature-dim", "model", "aggregator", "layers", "hidden",
            "heads", "fanouts", "budget-mb", "epochs", "batch-size",
            "lr", "seed", "system", "betty-k", "cost-model",
            "pipeline", "prefetch-depth", "host-budget-mb",
            "trace-out", "trace-ring", "metrics-json",
            "metrics-table", "run-log", "audit-json",
            "save-checkpoint", "load-checkpoint", "save-bundle",
            "eval", "verbose", "help",
        };
        known.insert(tools::cacheFlagNames().begin(),
                     tools::cacheFlagNames().end());
        known.insert(tools::kernelFlagNames().begin(),
                     tools::kernelFlagNames().end());
        flags.checkKnown(known);
        if (flags.getBool("verbose"))
            util::setLogLevel(util::LogLevel::Info);

        graph::Dataset data = loadInput(flags);
        std::printf("dataset %s: %u nodes, %llu edges, %d classes\n",
                    data.name().c_str(), data.graph().numNodes(),
                    static_cast<unsigned long long>(
                        data.graph().numEdges()),
                    data.numClasses());
        if (flags.has("save-bundle")) {
            graph::saveDatasetFile(flags.getString("save-bundle"),
                                   data);
            std::printf("bundle written to %s\n",
                        flags.getString("save-bundle").c_str());
        }

        train::TrainerOptions options;
        const std::string model = flags.getString("model", "sage");
        if (model == "sage")
            options.model_kind = train::ModelKind::Sage;
        else if (model == "gcn")
            options.model_kind = train::ModelKind::Gcn;
        else if (model == "gat")
            options.model_kind = train::ModelKind::Gat;
        else
            throw InvalidArgument("unknown --model '" + model + "'");

        options.model.aggregator = nn::aggregatorFromName(
            flags.getString("aggregator", "mean"));
        options.model.num_layers =
            static_cast<int>(flags.getInt("layers", 2));
        options.model.feature_dim = data.featureDim();
        options.model.hidden_dim =
            static_cast<int>(flags.getInt("hidden", 32));
        options.model.num_classes = data.numClasses();
        options.model.num_heads =
            static_cast<int>(flags.getInt("heads", 1));
        options.fanouts =
            tools::parseFanouts(flags.getString("fanouts", "10,25"));
        checkArgument(options.fanouts.size() ==
                          static_cast<std::size_t>(
                              options.model.num_layers),
                      "--fanouts must list one value per layer");
        options.learning_rate = flags.getDouble("lr", 5e-3);
        options.seed =
            static_cast<std::uint64_t>(flags.getInt("seed", 42));
        options.mode = flags.getBool("cost-model")
                           ? train::ExecutionMode::CostModel
                           : train::ExecutionMode::Numeric;
        options.kernels = tools::parseKernelConfig(flags);

        options.pipeline.enabled = flags.getBool("pipeline");
        options.pipeline.prefetch_depth =
            static_cast<int>(flags.getInt("prefetch-depth", 2));
        const tools::CacheCliOptions cache =
            tools::parseCacheFlags(flags);
        options.pipeline.feature_cache_bytes = cache.capacity_bytes;
        options.pipeline.cache_policy = cache.policy;
        options.pipeline.pinned_hot_nodes = cache.pinned_hot_nodes;
        options.pipeline.presample_batches = cache.presample_batches;
        options.pipeline.host_memory_budget =
            util::mib(flags.getDouble("host-budget-mb", 0.0));

        if (flags.has("trace-ring"))
            obs::tracer().setRingCapacity(static_cast<std::size_t>(
                flags.getInt("trace-ring", 1 << 16)));
        if (flags.has("trace-out"))
            obs::tracer().enable();
        if (flags.has("audit-json"))
            obs::memoryAudit().enable(true);
        if (flags.has("run-log")) {
            obs::eventLog().open(flags.getString("run-log"));
            obs::eventLog()
                .event(obs::names::kEvRunBegin)
                .field("dataset", data.name())
                .field("system", flags.getString("system", "buffalo"))
                .field("epochs", flags.getInt("epochs", 4))
                .field("batch_size", flags.getInt("batch-size", 256))
                .field("budget_mb", flags.getInt("budget-mb", 64));
        }
        // Arm the exit flusher so --run-log / --metrics-json are
        // complete even when an error path calls std::exit early.
        if (flags.has("metrics-json"))
            obs::exitFlush().registerMetricsJson(
                flags.getString("metrics-json"));
        if (flags.has("run-log") || flags.has("metrics-json"))
            obs::exitFlush().arm();

        // The per-epoch progress lines ride the unified reporting
        // hook, so one runTraining loop serves every trainer.
        options.epoch_observer = [](int epoch,
                                    const train::EpochReport &r) {
            if (r.pipelined) {
                std::printf(
                    "epoch %d: loss %.4f acc %.3f "
                    "(%s pipelined vs %s serial, prep %s hidden)\n",
                    epoch, r.mean_loss, r.accuracy,
                    util::formatSeconds(r.pipelined_seconds).c_str(),
                    util::formatSeconds(r.serial_seconds).c_str(),
                    util::formatSeconds(r.serial_seconds -
                                        r.pipelined_seconds)
                        .c_str());
                if (r.cache.capacity_bytes > 0) {
                    std::printf(
                        "  cache: %.1f%% hit rate, %s transfer saved "
                        "(%llu hits / %llu misses / %llu evictions)\n",
                        r.cache.hitRate() * 100.0,
                        util::formatBytes(r.transfer_saved_bytes)
                            .c_str(),
                        static_cast<unsigned long long>(r.cache.hits),
                        static_cast<unsigned long long>(
                            r.cache.misses),
                        static_cast<unsigned long long>(
                            r.cache.evictions));
                }
            } else {
                std::printf(
                    "epoch %d: loss %.4f acc %.3f (%s)\n", epoch,
                    r.mean_loss, r.accuracy,
                    util::formatSeconds(r.epoch_seconds).c_str());
            }
        };

        device::Device gpu(
            "gpu:0", util::mib(static_cast<double>(
                         flags.getInt("budget-mb", 64))));

        std::unique_ptr<train::TrainerBase> trainer;
        const std::string system =
            flags.getString("system", "buffalo");
        checkArgument(!options.pipeline.enabled || system == "buffalo",
                      "--pipeline requires --system buffalo");
        if (system == "buffalo" && options.pipeline.enabled) {
            trainer = std::make_unique<pipeline::PipelineTrainer>(
                options, gpu);
        } else if (system == "buffalo") {
            trainer =
                std::make_unique<train::BuffaloTrainer>(options, gpu);
        } else if (system == "whole") {
            trainer = std::make_unique<train::WholeBatchTrainer>(
                options, gpu);
        } else if (system == "betty") {
            trainer = std::make_unique<train::BettyTrainer>(
                options, gpu,
                static_cast<int>(flags.getInt("betty-k", 4)));
        } else {
            throw InvalidArgument("unknown --system '" + system + "'");
        }

        if (flags.has("load-checkpoint")) {
            nn::loadCheckpointFile(flags.getString("load-checkpoint"),
                                   trainer->model().module());
            std::printf("checkpoint loaded from %s\n",
                        flags.getString("load-checkpoint").c_str());
        }

        util::Rng rng(options.seed ^ 0x7EA);
        const int epochs =
            static_cast<int>(flags.getInt("epochs", 4));
        const std::size_t batch_size = static_cast<std::size_t>(
            flags.getInt("batch-size", 256));
        train::runTraining(*trainer, data, epochs, batch_size, rng);
        std::printf("peak device memory: %s of %s\n",
                    util::formatBytes(gpu.allocator().peakBytes())
                        .c_str(),
                    util::formatBytes(gpu.allocator().capacity())
                        .c_str());

        if (flags.getBool("eval") &&
            options.mode == train::ExecutionMode::Numeric) {
            auto stats =
                train::evaluate(*trainer, data, data.trainNodes(), rng);
            std::printf("eval: loss %.4f accuracy %.3f over %zu nodes "
                        "(%d micro-batches)\n",
                        stats.loss, stats.accuracy, stats.nodes,
                        stats.micro_batches);
        }
        if (flags.has("save-checkpoint")) {
            nn::saveCheckpointFile(flags.getString("save-checkpoint"),
                                   trainer->model().module());
            std::printf("checkpoint written to %s\n",
                        flags.getString("save-checkpoint").c_str());
        }

        if (flags.has("run-log")) {
            // Per-thread ring accounting: one tracer.ring event per
            // thread that lost spans, so undersized rings can be
            // attributed to the thread that overflowed.
            for (const obs::ThreadDropReport &drop :
                 obs::tracer().droppedByThread()) {
                if (drop.dropped == 0)
                    continue;
                obs::eventLog()
                    .event(obs::names::kEvTracerRing)
                    .field("tid", static_cast<std::uint64_t>(drop.tid))
                    .field("dropped", drop.dropped)
                    .field("capacity",
                           static_cast<std::uint64_t>(
                               obs::tracer().ringCapacity()));
            }
            obs::eventLog()
                .event(obs::names::kEvRunEnd)
                .field("epochs_run", trainer->epochsRun())
                .field("peak_device_bytes",
                       gpu.allocator().peakBytes())
                .field("tracer_dropped_spans",
                       obs::tracer().droppedSpans());
            obs::eventLog().close();
            std::printf("run log written to %s (%llu events)\n",
                        flags.getString("run-log").c_str(),
                        static_cast<unsigned long long>(
                            obs::eventLog().eventsWritten()));
        }
        if (flags.has("audit-json")) {
            obs::memoryAudit().writeJson(
                flags.getString("audit-json"));
            std::printf("memory audit written to %s "
                        "(%zu epochs, mean |rel err| %.1f%%)\n",
                        flags.getString("audit-json").c_str(),
                        obs::memoryAudit().epochs().size(),
                        obs::memoryAudit().epochs().empty()
                            ? 0.0
                            : obs::memoryAudit()
                                      .epochs()
                                      .back()
                                      .summary.meanAbsRelError() *
                                  100.0);
        }
        // Ring-buffer overwrites surface as a gauge so obs_validate
        // (and any metrics consumer) can flag undersized rings.
        obs::metrics()
            .gauge(obs::names::kGaugeTracerDroppedSpans)
            .set(static_cast<double>(obs::tracer().droppedSpans()));
        if (flags.has("trace-out")) {
            obs::tracer().disable();
            obs::tracer().writeJson(flags.getString("trace-out"));
            std::printf("trace written to %s (%zu spans)\n",
                        flags.getString("trace-out").c_str(),
                        obs::tracer().spanCount());
        }
        if (flags.has("metrics-json")) {
            obs::metrics().writeJson(flags.getString("metrics-json"));
            std::printf("metrics written to %s\n",
                        flags.getString("metrics-json").c_str());
        }
        if (flags.getBool("metrics-table"))
            std::fputs(obs::metrics().toTable().c_str(), stdout);
        return 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
