/**
 * @file
 * Behavioral tests for the NN substrate beyond gradient correctness:
 * parameter plumbing, loss semantics, optimizers, and model shapes.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/aggregators.h"
#include "nn/gat_model.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sage_model.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace buffalo::nn {
namespace {

namespace ops = buffalo::tensor;

TEST(Parameter, GradAccumulatesAcrossCalls)
{
    Parameter p("p", 2, 2);
    Tensor delta = Tensor::full(2, 2, 1.0f);
    p.accumulateGrad(delta);
    p.accumulateGrad(delta);
    EXPECT_EQ(p.grad().at(0, 0), 2.0f);
    p.zeroGrad();
    EXPECT_EQ(p.grad().at(0, 0), 0.0f);
    EXPECT_EQ(p.bytes(), 2 * 16u);
}

TEST(Loss, PerfectPredictionNearZero)
{
    // Huge margin on the right class -> near-zero loss, full accuracy.
    Tensor logits = Tensor::fromValues(2, 3,
                                       {10, -10, -10, -10, 10, -10});
    auto result = softmaxCrossEntropy(logits, {0, 1});
    EXPECT_LT(result.loss, 1e-6);
    EXPECT_EQ(result.correct, 2u);
}

TEST(Loss, UniformLogitsGiveLogK)
{
    Tensor logits = Tensor::zeros(4, 8);
    auto result = softmaxCrossEntropy(logits, {0, 1, 2, 3});
    EXPECT_NEAR(result.loss, std::log(8.0), 1e-6);
}

TEST(Loss, DenominatorScalesGradient)
{
    Tensor logits = Tensor::fromValues(1, 2, {0.3f, -0.2f});
    auto full = softmaxCrossEntropy(logits, {0});
    auto scaled = softmaxCrossEntropy(logits, {0}, 4);
    EXPECT_NEAR(scaled.loss, full.loss / 4.0, 1e-9);
    EXPECT_NEAR(scaled.grad_logits.at(0, 0),
                full.grad_logits.at(0, 0) / 4.0f, 1e-7);
}

TEST(Loss, RejectsBadLabels)
{
    Tensor logits = Tensor::zeros(1, 3);
    EXPECT_THROW(softmaxCrossEntropy(logits, {3}), InvalidArgument);
    EXPECT_THROW(softmaxCrossEntropy(logits, {0, 1}),
                 InvalidArgument);
}

/** Toy quadratic problem: optimizers must reduce the loss. */
template <typename MakeOpt>
double
optimizeQuadratic(MakeOpt make_opt, int steps)
{
    Parameter p("w", 1, 4);
    for (std::size_t j = 0; j < 4; ++j)
        p.value().at(0, j) = 2.0f + static_cast<float>(j);
    auto opt = make_opt(std::vector<Parameter *>{&p});
    double loss = 0.0;
    for (int i = 0; i < steps; ++i) {
        loss = 0.0;
        for (std::size_t j = 0; j < 4; ++j) {
            const float w = p.value().at(0, j);
            loss += 0.5 * w * w;
            p.grad().at(0, j) += w; // dL/dw = w
        }
        opt->step();
    }
    return loss;
}

TEST(Optimizer, SgdConverges)
{
    const double final_loss = optimizeQuadratic(
        [](std::vector<Parameter *> params) {
            return std::make_unique<Sgd>(std::move(params), 0.1);
        },
        100);
    EXPECT_LT(final_loss, 1e-4);
}

TEST(Optimizer, SgdMomentumConverges)
{
    const double final_loss = optimizeQuadratic(
        [](std::vector<Parameter *> params) {
            return std::make_unique<Sgd>(std::move(params), 0.05, 0.9);
        },
        120);
    EXPECT_LT(final_loss, 1e-3);
}

TEST(Optimizer, AdamConverges)
{
    const double final_loss = optimizeQuadratic(
        [](std::vector<Parameter *> params) {
            return std::make_unique<Adam>(std::move(params), 0.3);
        },
        200);
    EXPECT_LT(final_loss, 1e-3);
}

TEST(Optimizer, StepZeroesGradients)
{
    Parameter p("w", 1, 1);
    p.grad().at(0, 0) = 1.0f;
    Sgd sgd({&p}, 0.1);
    sgd.step();
    EXPECT_EQ(p.grad().at(0, 0), 0.0f);
}

TEST(Optimizer, AdamStateBytesAreDoubleWeights)
{
    Parameter p("w", 8, 8);
    Adam adam({&p}, 1e-3);
    EXPECT_EQ(adam.stateBytes(), 2 * p.value().bytes());
}

TEST(Aggregators, FactoryAndNames)
{
    util::Rng rng(1);
    for (auto kind :
         {AggregatorKind::Mean, AggregatorKind::Pool,
          AggregatorKind::Lstm, AggregatorKind::Gcn}) {
        auto agg = makeAggregator(kind, "a", 8, rng);
        EXPECT_EQ(agg->kind(), kind);
        EXPECT_EQ(agg->dim(), 8u);
        EXPECT_EQ(aggregatorFromName(aggregatorName(kind)), kind);
    }
    EXPECT_THROW(aggregatorFromName("nope"), InvalidArgument);
}

TEST(Aggregators, MeanOfIdenticalRowsIsIdentity)
{
    util::Rng rng(2);
    auto agg = makeAggregator(AggregatorKind::Mean, "m", 3, rng);
    // 2 nodes, degree 2, all neighbor rows equal to (1, 2, 3).
    Tensor feats = Tensor::zeros(4, 3);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            feats.at(r, c) = static_cast<float>(c + 1);
    std::unique_ptr<AggregatorCache> cache;
    Tensor out = agg->forward(feats, 2, 2, cache);
    EXPECT_NEAR(out.at(0, 0), 1.0f, 1e-6);
    EXPECT_NEAR(out.at(1, 2), 3.0f, 1e-6);
}

TEST(Aggregators, GcnUsesSqrtNormalization)
{
    util::Rng rng(3);
    auto agg = makeAggregator(AggregatorKind::Gcn, "g", 2, rng);
    Tensor feats = Tensor::full(4, 2, 1.0f); // 1 node, degree 4
    std::unique_ptr<AggregatorCache> cache;
    Tensor out = agg->forward(feats, 1, 4, cache);
    EXPECT_NEAR(out.at(0, 0), 4.0f / std::sqrt(4.0f), 1e-5);
}

TEST(Aggregators, LstmCacheGrowsWithDegree)
{
    util::Rng rng(4);
    auto agg = makeAggregator(AggregatorKind::Lstm, "l", 4, rng);
    std::unique_ptr<AggregatorCache> small_cache, large_cache;
    Tensor f2 = Tensor::full(2 * 2, 4, 0.1f);
    Tensor f8 = Tensor::full(2 * 8, 4, 0.1f);
    agg->forward(f2, 2, 2, small_cache);
    agg->forward(f8, 2, 8, large_cache);
    EXPECT_GT(large_cache->bytes(), small_cache->bytes());
}

TEST(Aggregators, FlopsMonotonicInWork)
{
    util::Rng rng(5);
    for (auto kind : {AggregatorKind::Mean, AggregatorKind::Pool,
                      AggregatorKind::Lstm}) {
        auto agg = makeAggregator(kind, "f", 16, rng);
        EXPECT_LT(agg->flops(10, 5), agg->flops(20, 5));
        EXPECT_LT(agg->flops(10, 5), agg->flops(10, 10));
    }
}

TEST(Aggregators, RejectsBadShapes)
{
    util::Rng rng(6);
    auto agg = makeAggregator(AggregatorKind::Mean, "m", 4, rng);
    std::unique_ptr<AggregatorCache> cache;
    Tensor bad = Tensor::zeros(5, 4); // not n*d rows
    EXPECT_THROW(agg->forward(bad, 2, 3, cache), InvalidArgument);
    EXPECT_THROW(agg->forward(bad, 5, 0, cache), InvalidArgument);
}

/** Tiny 1-layer micro-batch: 2 seeds over 4 srcs. */
sampling::MicroBatch
oneLayerBatch()
{
    sampling::Block block;
    block.src_nodes = {0, 1, 2, 3};
    block.num_dst = 2;
    block.offsets = {0, 2, 3};
    block.neighbors = {2, 3, 3};
    sampling::MicroBatch mb;
    mb.blocks = {block};
    mb.validateChain();
    return mb;
}

TEST(SageModel, OutputShapeAndDeterminism)
{
    ModelConfig config;
    config.num_layers = 1;
    config.feature_dim = 4;
    config.hidden_dim = 8;
    config.num_classes = 3;

    sampling::MicroBatch mb = oneLayerBatch();
    util::Rng rng(7);
    Tensor feats = Tensor::zeros(4, 4);
    ops::fillUniform(feats, 1.0f, rng);

    SageModel model_a(config, 5);
    SageModel model_b(config, 5);
    SageModel::ForwardCache ca, cb;
    Tensor out_a = model_a.forward(mb, feats, ca);
    Tensor out_b = model_b.forward(mb, feats, cb);
    EXPECT_EQ(out_a.rows(), 2u);
    EXPECT_EQ(out_a.cols(), 3u);
    EXPECT_LT(ops::maxAbsDiff(out_a, out_b), 1e-9);

    SageModel model_c(config, 6); // different seed -> different weights
    SageModel::ForwardCache cc;
    Tensor out_c = model_c.forward(mb, feats, cc);
    EXPECT_GT(ops::maxAbsDiff(out_a, out_c), 1e-6);
}

TEST(SageModel, HandlesZeroDegreeDestinations)
{
    // One destination with no neighbors at all.
    sampling::Block block;
    block.src_nodes = {0, 1, 2};
    block.num_dst = 2;
    block.offsets = {0, 0, 2}; // dst 0 has degree 0
    block.neighbors = {1, 2};
    sampling::MicroBatch mb;
    mb.blocks = {block};

    ModelConfig config;
    config.num_layers = 1;
    config.feature_dim = 3;
    config.hidden_dim = 4;
    config.num_classes = 2;

    util::Rng rng(8);
    Tensor feats = Tensor::zeros(3, 3);
    ops::fillUniform(feats, 1.0f, rng);
    SageModel model(config, 9);
    SageModel::ForwardCache cache;
    Tensor out = model.forward(mb, feats, cache);
    EXPECT_EQ(out.rows(), 2u);
    // Backward must not crash on the empty bucket.
    Tensor grad = Tensor::full(2, 2, 0.5f);
    EXPECT_NO_THROW(model.backward(cache, grad));
}

TEST(SageModel, ParameterCountMatchesConfig)
{
    ModelConfig config;
    config.aggregator = AggregatorKind::Lstm;
    config.num_layers = 2;
    config.feature_dim = 4;
    config.hidden_dim = 8;
    config.num_classes = 3;
    SageModel model(config, 1);
    // Per layer: LSTM (3 params) + update Linear (2 params).
    EXPECT_EQ(model.parameters().size(), 2u * (3 + 2));
}

TEST(GatModel, OutputShapeAndHeads)
{
    ModelConfig config;
    config.num_layers = 2;
    config.feature_dim = 4;
    config.hidden_dim = 8;
    config.num_classes = 4;
    config.num_heads = 2;

    sampling::Block bottom;
    bottom.src_nodes = {0, 1, 2, 3};
    bottom.num_dst = 3;
    bottom.offsets = {0, 1, 2, 3};
    bottom.neighbors = {3, 0, 1};
    sampling::Block top;
    top.src_nodes = {0, 1, 2};
    top.num_dst = 2;
    top.offsets = {0, 1, 2};
    top.neighbors = {2, 0};
    sampling::MicroBatch mb;
    mb.blocks = {bottom, top};
    mb.validateChain();

    util::Rng rng(10);
    Tensor feats = Tensor::zeros(4, 4);
    ops::fillUniform(feats, 1.0f, rng);
    GatModel model(config, 11);
    GatModel::ForwardCache cache;
    Tensor out = model.forward(mb, feats, cache);
    EXPECT_EQ(out.rows(), 2u);
    EXPECT_EQ(out.cols(), 4u);
    // 2 layers x 2 heads x 3 params.
    EXPECT_EQ(model.parameters().size(), 12u);
}

TEST(GatModel, AttentionRowsSumToOne)
{
    ModelConfig config;
    config.num_layers = 1;
    config.feature_dim = 3;
    config.hidden_dim = 4;
    config.num_classes = 4;

    sampling::MicroBatch mb = oneLayerBatch();
    util::Rng rng(12);
    Tensor feats = Tensor::zeros(4, 3);
    ops::fillUniform(feats, 1.0f, rng);
    GatModel model(config, 13);
    GatModel::ForwardCache cache;
    model.forward(mb, feats, cache);

    for (const auto &bucket_states : cache.layers[0].head_states) {
        for (const auto &head : bucket_states) {
            for (std::size_t r = 0; r < head.alpha.rows(); ++r) {
                double row_sum = 0.0;
                for (std::size_t c = 0; c < head.alpha.cols(); ++c)
                    row_sum += head.alpha.at(r, c);
                EXPECT_NEAR(row_sum, 1.0, 1e-5);
            }
        }
    }
}

TEST(ModelConfig, ValidationAndDims)
{
    ModelConfig config;
    config.num_layers = 3;
    config.feature_dim = 10;
    config.hidden_dim = 20;
    config.num_classes = 5;
    config.validate();
    EXPECT_EQ(config.layerInDim(0), 10);
    EXPECT_EQ(config.layerInDim(1), 20);
    EXPECT_EQ(config.layerOutDim(1), 20);
    EXPECT_EQ(config.layerOutDim(2), 5);

    config.num_layers = 0;
    EXPECT_THROW(config.validate(), InvalidArgument);
}

} // namespace
} // namespace buffalo::nn
