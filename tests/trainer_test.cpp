/**
 * @file
 * Tests for the end-to-end training pipelines: OOM semantics,
 * cost-model execution, phase accounting, epoch training, and the
 * simulated multi-GPU runner.
 */
#include <gtest/gtest.h>

#include "train/experiment.h"
#include "train/trainer.h"
#include "util/format.h"

namespace buffalo::train {
namespace {

graph::Dataset &
arxiv()
{
    static graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.08);
    return data;
}

TrainerOptions
baseOptions(const graph::Dataset &data,
            nn::AggregatorKind kind = nn::AggregatorKind::Mean)
{
    TrainerOptions options;
    options.model.aggregator = kind;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    return options;
}

NodeList
seedsOf(const graph::Dataset &data, std::size_t count)
{
    return NodeList(data.trainNodes().begin(),
                    data.trainNodes().begin() +
                        std::min(count, data.trainNodes().size()));
}

TEST(WholeBatch, TrainsUnderLargeBudget)
{
    auto &data = arxiv();
    device::Device dev("gpu", util::gib(8));
    WholeBatchTrainer trainer(baseOptions(data), dev);
    util::Rng rng(1);
    auto stats = trainer.trainIteration(data, seedsOf(data, 64), rng);
    EXPECT_EQ(stats.num_micro_batches, 1);
    EXPECT_GT(stats.loss, 0.0);
    EXPECT_EQ(stats.num_outputs, 64u);
    EXPECT_GT(stats.peak_device_bytes, 0u);
    EXPECT_GT(stats.phases.get(phaseName(Phase::GpuCompute)), 0.0);
    EXPECT_GT(stats.phases.get(phaseName(Phase::DataLoading)), 0.0);
}

/** Measures the whole-batch peak for @p options on huge memory. */
std::uint64_t
measureWholeBatchPeak(const TrainerOptions &options,
                      const NodeList &seeds, std::uint64_t rng_seed)
{
    device::Device dev("probe", util::gib(64));
    WholeBatchTrainer trainer(options, dev);
    util::Rng rng(rng_seed);
    return trainer.trainIteration(arxiv(), seeds, rng)
        .peak_device_bytes;
}

TEST(WholeBatch, OomsUnderTightBudget)
{
    auto &data = arxiv();
    TrainerOptions options =
        baseOptions(data, nn::AggregatorKind::Lstm);
    const NodeList seeds = seedsOf(data, 256);
    const std::uint64_t peak =
        measureWholeBatchPeak(options, seeds, 2);
    device::Device dev("gpu", peak / 2);
    WholeBatchTrainer trainer(options, dev);
    util::Rng rng(2);
    EXPECT_THROW(trainer.trainIteration(data, seeds, rng),
                 device::DeviceOom);
}

TEST(Buffalo, SucceedsWhereWholeBatchOoms)
{
    auto &data = arxiv();
    TrainerOptions options =
        baseOptions(data, nn::AggregatorKind::Lstm);
    const NodeList seeds = seedsOf(data, 256);
    const std::uint64_t budget =
        measureWholeBatchPeak(options, seeds, 3) * 7 / 10;

    device::Device whole_dev("gpu", budget);
    {
        WholeBatchTrainer whole(options, whole_dev);
        util::Rng rng(3);
        EXPECT_THROW(whole.trainIteration(data, seeds, rng),
                     device::DeviceOom);
    }

    device::Device buffalo_dev("gpu", budget);
    BuffaloTrainer buffalo(options, buffalo_dev);
    util::Rng rng(3);
    auto stats = buffalo.trainIteration(data, seeds, rng);
    EXPECT_GT(stats.num_micro_batches, 1);
    EXPECT_LE(stats.peak_device_bytes, budget);
    EXPECT_EQ(stats.num_outputs, seeds.size());
}

TEST(Buffalo, PhasesIncludeScheduling)
{
    auto &data = arxiv();
    device::Device dev("gpu", util::mib(64));
    BuffaloTrainer trainer(baseOptions(data), dev);
    util::Rng rng(4);
    auto stats = trainer.trainIteration(data, seedsOf(data, 128), rng);
    EXPECT_GE(stats.phases.get(phaseName(Phase::Scheduling)), 0.0);
    EXPECT_GE(stats.phases.get(phaseName(Phase::ConnectionCheck)), 0.0);
    EXPECT_GE(stats.phases.get(phaseName(Phase::BlockConstruction)),
              0.0);
    // Buffalo never pays REG or METIS time.
    EXPECT_EQ(stats.phases.get(phaseName(Phase::RegConstruction)), 0.0);
    EXPECT_EQ(stats.phases.get(phaseName(Phase::MetisPartition)), 0.0);
    EXPECT_EQ(stats.endToEndSeconds(), stats.phases.total());
}

TEST(Betty, TrainsAndPaysPartitioningTime)
{
    auto &data = arxiv();
    device::Device dev("gpu", util::gib(2));
    BettyTrainer trainer(baseOptions(data), dev, 4);
    util::Rng rng(5);
    auto stats = trainer.trainIteration(data, seedsOf(data, 128), rng);
    EXPECT_GE(stats.num_micro_batches, 2);
    EXPECT_GT(stats.phases.get(phaseName(Phase::RegConstruction)) +
                  stats.phases.get(phaseName(Phase::MetisPartition)),
              0.0);
    EXPECT_GT(stats.loss, 0.0);
}

TEST(CostModel, RunsWithoutNumericKernels)
{
    auto &data = arxiv();
    TrainerOptions options =
        baseOptions(data, nn::AggregatorKind::Lstm);
    options.mode = ExecutionMode::CostModel;
    device::Device dev("gpu", util::gib(24));
    BuffaloTrainer trainer(options, dev);
    util::Rng rng(6);
    auto stats = trainer.trainIteration(data, seedsOf(data, 256), rng);
    EXPECT_EQ(stats.loss, 0.0); // no numeric loss in cost mode
    EXPECT_GT(stats.phases.get(phaseName(Phase::GpuCompute)), 0.0);
    EXPECT_GT(stats.peak_device_bytes, 0u);
    EXPECT_GT(dev.totalSeconds(), 0.0);
}

TEST(CostModel, OomsExactlyLikeNumericMode)
{
    auto &data = arxiv();
    TrainerOptions options =
        baseOptions(data, nn::AggregatorKind::Lstm);
    const NodeList seeds = seedsOf(data, 256);
    const std::uint64_t peak =
        measureWholeBatchPeak(options, seeds, 7);
    options.mode = ExecutionMode::CostModel;
    device::Device dev("gpu", peak / 2);
    WholeBatchTrainer trainer(options, dev);
    util::Rng rng(7);
    EXPECT_THROW(trainer.trainIteration(data, seeds, rng),
                 device::DeviceOom);
}

TEST(CostModel, StaticBytesChargedAndReleased)
{
    auto &data = arxiv();
    TrainerOptions options = baseOptions(data);
    options.mode = ExecutionMode::CostModel;
    device::Device dev("gpu", util::gib(1));
    {
        BuffaloTrainer trainer(options, dev);
        EXPECT_EQ(dev.allocator().bytesInUse(),
                  trainer.staticBytes());
    }
    EXPECT_EQ(dev.allocator().bytesInUse(), 0u);
}

TEST(Trainer, RejectsMismatchedFanouts)
{
    auto &data = arxiv();
    TrainerOptions options = baseOptions(data);
    options.fanouts = {5}; // model has 2 layers
    device::Device dev("gpu", util::gib(1));
    EXPECT_THROW(WholeBatchTrainer(options, dev), InvalidArgument);
}

TEST(Epochs, LossDecreasesOverTraining)
{
    auto &data = arxiv();
    TrainerOptions options = baseOptions(data);
    options.learning_rate = 1e-2;
    device::Device dev("gpu", util::gib(8));
    BuffaloTrainer trainer(options, dev);
    util::Rng rng(8);
    auto epochs = runTraining(trainer, data, 6, 64, rng);
    ASSERT_EQ(epochs.size(), 6u);
    EXPECT_LT(epochs.back().mean_loss,
              epochs.front().mean_loss * 0.9);
    EXPECT_GT(epochs.back().accuracy, epochs.front().accuracy);
}

TEST(Epochs, MakeBatchesPartitionsNodes)
{
    util::Rng rng(9);
    NodeList nodes(100);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        nodes[i] = static_cast<graph::NodeId>(i);
    auto batches = makeBatches(nodes, 32, rng);
    ASSERT_EQ(batches.size(), 4u);
    std::size_t total = 0;
    for (const auto &batch : batches)
        total += batch.size();
    EXPECT_EQ(total, 100u);
    EXPECT_EQ(batches.back().size(), 4u);
}

// MultiGpu.TwoDevicesSlightlyFaster lives in perf_test.cpp: it
// asserts on measured wall-clock time, so it carries the `perf`
// CTest label and sanitizer CI legs skip it.

TEST(Buffalo, OomRetryReschedulesTighter)
{
    // Lie to the scheduler: tell it the device has 2x the real
    // capacity. Execution then OOMs and the retry loop must recover
    // by rescheduling against a shrinking safety factor.
    auto &data = arxiv();
    TrainerOptions options =
        baseOptions(data, nn::AggregatorKind::Lstm);
    const NodeList seeds = seedsOf(data, 256);
    const std::uint64_t real_capacity =
        measureWholeBatchPeak(options, seeds, 14) * 6 / 10;
    options.scheduler.mem_constraint = real_capacity * 2;

    device::Device dev("gpu", real_capacity);
    BuffaloTrainer trainer(options, dev);
    util::Rng rng(14);
    auto stats = trainer.trainIteration(data, seeds, rng);
    EXPECT_GT(stats.num_micro_batches, 1);
    EXPECT_LE(stats.peak_device_bytes, real_capacity);
    EXPECT_EQ(stats.num_outputs, seeds.size());
}

TEST(Pipelining, OverlappedTimeIsBoundedAndBeneficial)
{
    auto &data = arxiv();
    TrainerOptions options =
        baseOptions(data, nn::AggregatorKind::Lstm);
    options.mode = ExecutionMode::CostModel;
    const NodeList seeds = seedsOf(data, 256);
    const std::uint64_t budget =
        measureWholeBatchPeak(options, seeds, 12) / 2;
    device::Device dev("gpu", budget);
    BuffaloTrainer trainer(options, dev);
    util::Rng rng(12);
    auto stats = trainer.trainIteration(data, seeds, rng);
    ASSERT_GT(stats.num_micro_batches, 1);
    // Overlap can only help, and cannot beat the larger of the two
    // phase sums.
    EXPECT_GT(stats.pipelined_seconds, 0.0);
    EXPECT_LE(stats.pipelined_seconds,
              stats.endToEndSeconds() + 1e-9);
}

TEST(MultiGpu, RequiresCostModelMode)
{
    auto &data = arxiv();
    TrainerOptions options = baseOptions(data);
    device::DeviceGroup group(2, util::mib(64));
    util::Rng rng(11);
    EXPECT_THROW(runBuffaloDataParallel(data, options, group,
                                        seedsOf(data, 32), rng),
                 InvalidArgument);
}

} // namespace
} // namespace buffalo::train
