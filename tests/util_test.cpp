/**
 * @file
 * Unit and property tests for the util substrate: RNG, histograms,
 * tables, timers, thread pool, and formatting.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/errors.h"
#include "util/format.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace buffalo::util {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBoundedRejectsZero)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextBounded(0), InvalidArgument);
}

/** Property: nextBounded stays in range for many bounds. */
class RngBoundedProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundedProperty, StaysInRange)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 7919 + 1);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.nextBounded(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedProperty,
                         ::testing::Values(1, 2, 3, 7, 10, 1000,
                                           1ull << 32, (1ull << 63)));

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(9);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.nextGaussian();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.1);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextInRange(-2, 2));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), -2);
    EXPECT_EQ(*seen.rbegin(), 2);
}

/** Property: sampling without replacement yields distinct in-range ids. */
class RngSampleProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint64_t>>
{
};

TEST_P(RngSampleProperty, DistinctAndInRange)
{
    const auto [population, count] = GetParam();
    Rng rng(population * 31 + count);
    auto picks = rng.sampleWithoutReplacement(population, count);
    EXPECT_EQ(picks.size(), std::min(population, count));
    std::set<std::uint64_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), picks.size());
    for (auto pick : picks)
        EXPECT_LT(pick, population);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RngSampleProperty,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{10, 3},
                      std::pair<std::uint64_t, std::uint64_t>{10, 10},
                      std::pair<std::uint64_t, std::uint64_t>{10, 20},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 1},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 999},
                      std::pair<std::uint64_t, std::uint64_t>{50000,
                                                              128}));

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(3);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = values;
    rng.shuffle(values);
    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, sorted);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(77);
    Rng child = parent.fork();
    // Child stream should not replay the parent stream.
    Rng parent_copy(77);
    parent_copy.fork();
    int equal = 0;
    for (int i = 0; i < 50; ++i)
        if (child.next() == parent.next())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Histogram, LinearBinning)
{
    Histogram h = Histogram::linear(10.0, 5);
    h.add(0.5);
    h.add(3.0);
    h.add(9.9);
    h.add(100.0); // clamps into last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bins()[0].count, 1u);
    EXPECT_EQ(h.bins()[1].count, 1u);
    EXPECT_EQ(h.bins()[4].count, 2u);
}

TEST(Histogram, LogBinningEdges)
{
    Histogram h = Histogram::logarithmic(16.0, 2.0);
    // bins: [0,1) [1,2) [2,4) [4,8) [8,16)
    ASSERT_EQ(h.bins().size(), 5u);
    h.add(0.0);
    h.add(1.0);
    h.add(3.0);
    h.add(8.0);
    EXPECT_EQ(h.bins()[0].count, 1u);
    EXPECT_EQ(h.bins()[1].count, 1u);
    EXPECT_EQ(h.bins()[2].count, 1u);
    EXPECT_EQ(h.bins()[4].count, 1u);
}

TEST(Histogram, WeightedMean)
{
    Histogram h = Histogram::linear(10, 10);
    h.addWeighted(2.0, 3);
    h.addWeighted(8.0, 1);
    EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 8.0) / 4.0);
}

TEST(SummaryStats, BasicMoments)
{
    auto stats = SummaryStats::of({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 4.0);
    EXPECT_DOUBLE_EQ(stats.mean, 2.5);
    EXPECT_NEAR(stats.stddev, 1.118, 1e-3);
}

TEST(SummaryStats, EmptyIsZero)
{
    auto stats = SummaryStats::of({});
    EXPECT_EQ(stats.mean, 0.0);
    EXPECT_EQ(stats.stddev, 0.0);
}

TEST(Table, RendersAlignedRows)
{
    Table table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "23456"});
    const std::string text = table.render();
    EXPECT_NE(text.find("| alpha |"), std::string::npos);
    EXPECT_NE(text.find("| 23456 |"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, RejectsWrongArity)
{
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), InvalidArgument);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::count(1234567), "1,234,567");
    EXPECT_EQ(Table::count(-1000), "-1,000");
    EXPECT_EQ(Table::count(7), "7");
}

TEST(PhaseTimer, AccumulatesAndOrders)
{
    PhaseTimer timer;
    timer.add("b", 1.0);
    timer.add("a", 2.0);
    timer.add("b", 0.5);
    EXPECT_DOUBLE_EQ(timer.get("b"), 1.5);
    EXPECT_DOUBLE_EQ(timer.get("a"), 2.0);
    EXPECT_DOUBLE_EQ(timer.total(), 3.5);
    ASSERT_EQ(timer.phases().size(), 2u);
    EXPECT_EQ(timer.phases()[0], "b"); // first-charged order
}

TEST(PhaseTimer, MergeSums)
{
    PhaseTimer a, b;
    a.add("x", 1.0);
    b.add("x", 2.0);
    b.add("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(PhaseTimer, ScopeChargesElapsed)
{
    PhaseTimer timer;
    {
        PhaseTimer::Scope scope(timer, "work");
    }
    EXPECT_GE(timer.get("work"), 0.0);
    EXPECT_EQ(timer.phases().size(), 1u);
}

TEST(StopWatch, MovesForward)
{
    StopWatch watch;
    const double t1 = watch.seconds();
    const double t2 = watch.seconds();
    EXPECT_GE(t2, t1);
    watch.reset();
    EXPECT_LT(watch.seconds(), 1.0);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, 1000,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(5, 5, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [&](std::size_t i) {
                                      if (i == 42)
                                          throw InvalidArgument("boom");
                                  }),
                 InvalidArgument);
}

TEST(ThreadPool, SubmitAndWait)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 50);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(1536), "1.50 KB");
    EXPECT_EQ(formatBytes(gib(24)), "24.00 GB");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.709), "70.9%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(Format, Seconds)
{
    EXPECT_EQ(formatSeconds(0.5e-4), "50.0 us");
    EXPECT_EQ(formatSeconds(0.05), "50.00 ms");
    EXPECT_EQ(formatSeconds(2.5), "2.50 s");
}

TEST(Errors, CheckHelpers)
{
    EXPECT_NO_THROW(checkArgument(true, "fine"));
    EXPECT_THROW(checkArgument(false, "bad arg"), InvalidArgument);
    EXPECT_THROW(checkInternal(false, "bug"), InternalError);
}

} // namespace
} // namespace buffalo::util
