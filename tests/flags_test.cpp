/**
 * @file
 * Tests for the command-line flag parser.
 */
#include <gtest/gtest.h>

#include "util/errors.h"
#include "util/flags.h"

namespace buffalo::util {
namespace {

Flags
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceForms)
{
    Flags flags = parse({"--name=alpha", "--count", "7"});
    EXPECT_EQ(flags.getString("name"), "alpha");
    EXPECT_EQ(flags.getInt("count", 0), 7);
}

TEST(Flags, BooleanForms)
{
    Flags flags = parse({"--verbose", "--fast=true", "--slow=0"});
    EXPECT_TRUE(flags.getBool("verbose"));
    EXPECT_TRUE(flags.getBool("fast"));
    EXPECT_FALSE(flags.getBool("slow"));
    EXPECT_FALSE(flags.getBool("absent"));
    EXPECT_TRUE(flags.getBool("absent", true));
}

TEST(Flags, Defaults)
{
    Flags flags = parse({});
    EXPECT_EQ(flags.getString("x", "dflt"), "dflt");
    EXPECT_EQ(flags.getInt("x", 42), 42);
    EXPECT_DOUBLE_EQ(flags.getDouble("x", 2.5), 2.5);
    EXPECT_FALSE(flags.has("x"));
}

TEST(Flags, DoubleParsing)
{
    Flags flags = parse({"--lr=5e-3"});
    EXPECT_DOUBLE_EQ(flags.getDouble("lr", 0), 5e-3);
}

TEST(Flags, PositionalArguments)
{
    Flags flags = parse({"input.txt", "--k=3", "output.txt"});
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "input.txt");
    EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(Flags, MalformedValuesThrow)
{
    Flags flags = parse({"--count=abc"});
    EXPECT_THROW(flags.getInt("count", 0), InvalidArgument);
    Flags flags2 = parse({"--lr=x.y"});
    EXPECT_THROW(flags2.getDouble("lr", 0), InvalidArgument);
}

TEST(Flags, UnknownFlagDetection)
{
    Flags flags = parse({"--known=1", "--typo=2"});
    EXPECT_THROW(flags.checkKnown({"known"}), InvalidArgument);
    EXPECT_NO_THROW(flags.checkKnown({"known", "typo"}));
}

TEST(Flags, NegativeNumbersAsValues)
{
    // "--x -3": the value starts with '-' but not "--", so it binds.
    Flags flags = parse({"--x", "-3"});
    EXPECT_EQ(flags.getInt("x", 0), -3);
}

} // namespace
} // namespace buffalo::util
