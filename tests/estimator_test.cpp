/**
 * @file
 * Tests for Buffalo's analytical memory estimation (paper §IV-D):
 * per-bucket cone pricing, the Eq. 1 grouping ratio, and the accuracy
 * of the redundancy-aware group estimate against real measured memory
 * (the property Table III reports).
 */
#include <gtest/gtest.h>

#include "core/mem_estimator.h"
#include "core/micro_batch_generator.h"
#include "device/device.h"
#include "graph/datasets.h"
#include "nn/loss.h"
#include "nn/sage_model.h"
#include "train/feature_loader.h"
#include "util/format.h"
#include "util/rng.h"

namespace buffalo::core {
namespace {

struct EstSetup
{
    graph::Dataset data;
    SampledSubgraph sg;
    nn::ModelConfig config;
};

EstSetup
makeSetup(nn::AggregatorKind kind, std::size_t num_seeds = 128)
{
    EstSetup setup{graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.1),
                {},
                {}};
    util::Rng rng(5);
    sampling::NeighborSampler sampler({10, 25});
    graph::NodeList seeds(
        setup.data.trainNodes().begin(),
        setup.data.trainNodes().begin() +
            std::min(num_seeds, setup.data.trainNodes().size()));
    setup.sg = sampler.sample(setup.data.graph(), seeds, rng);

    setup.config.aggregator = kind;
    setup.config.num_layers = 2;
    setup.config.feature_dim = setup.data.featureDim();
    setup.config.hidden_dim = 16;
    setup.config.num_classes = setup.data.numClasses();
    return setup;
}

TEST(BucketMemEstimator, CountsAreExactForTheCone)
{
    EstSetup setup = makeSetup(nn::AggregatorKind::Mean);
    nn::MemoryModel model(setup.config);
    BucketMemEstimator estimator(model, setup.sg);

    auto buckets = sampling::bucketizeSeeds(setup.sg);
    auto infos = estimator.estimate(buckets);
    ASSERT_EQ(infos.size(), buckets.size());

    MicroBatchGenerator generator;
    for (const auto &info : infos) {
        EXPECT_EQ(info.outputs, info.bucket.volume());
        EXPECT_EQ(info.degree,
                  static_cast<double>(info.bucket.degree));
        // The cone walk's input count must equal the real block
        // chain's input count for the same outputs.
        BucketGroup group;
        group.buckets = {info};
        auto mb = generator.generateOne(setup.sg, group);
        EXPECT_EQ(info.inputs, mb.inputNodes().size());
        EXPECT_GT(info.est_bytes, 0u);
    }
}

TEST(BucketMemEstimator, MoreOutputsCostMore)
{
    EstSetup setup = makeSetup(nn::AggregatorKind::Lstm);
    nn::MemoryModel model(setup.config);
    BucketMemEstimator estimator(model, setup.sg);
    auto buckets = sampling::bucketizeSeeds(setup.sg);

    // Find a bucket with >= 4 members and compare against its half.
    for (const auto &bucket : buckets) {
        if (bucket.volume() < 4)
            continue;
        DegreeBucket half = bucket;
        half.members.resize(bucket.members.size() / 2);
        EXPECT_LT(estimator.estimateBucket(half).est_bytes,
                  estimator.estimateBucket(bucket).est_bytes);
        break;
    }
}

TEST(BucketMemEstimator, RejectsDepthMismatch)
{
    EstSetup setup = makeSetup(nn::AggregatorKind::Mean);
    nn::ModelConfig bad = setup.config;
    bad.num_layers = 3;
    nn::MemoryModel model(bad);
    EXPECT_THROW(BucketMemEstimator(model, setup.sg),
                 InvalidArgument);
}

TEST(RedundancyRatio, Bounds)
{
    RedundancyAwareMemEstimator estimator(0.4);
    BucketMemInfo info;
    info.outputs = 10;
    info.degree = 5;
    info.inputs = 50; // I = O*D -> ratio = 1/C > 1 -> clamped
    EXPECT_DOUBLE_EQ(estimator.groupingRatio(info), 1.0);

    info.inputs = 4; // heavy overlap
    const double ratio = estimator.groupingRatio(info);
    EXPECT_GT(ratio, 0.0);
    EXPECT_LT(ratio, 1.0);
    EXPECT_NEAR(ratio, 4.0 / (10 * 5 * 0.4), 1e-12);
}

TEST(RedundancyRatio, HigherClusteringLowersRatio)
{
    BucketMemInfo info;
    info.outputs = 100;
    info.degree = 10;
    info.inputs = 150;
    RedundancyAwareMemEstimator low_c(0.2), high_c(0.6);
    EXPECT_GT(low_c.groupingRatio(info), high_c.groupingRatio(info));
}

TEST(RedundancyRatio, DegenerateBucketsRatioOne)
{
    RedundancyAwareMemEstimator estimator(0.4);
    BucketMemInfo info; // zero outputs / degree
    EXPECT_DOUBLE_EQ(estimator.groupingRatio(info), 1.0);
}

TEST(GroupEstimate, NeverExceedsLinearSum)
{
    EstSetup setup = makeSetup(nn::AggregatorKind::Lstm);
    nn::MemoryModel model(setup.config);
    BucketMemEstimator bucket_estimator(model, setup.sg);
    auto infos =
        bucket_estimator.estimate(sampling::bucketizeSeeds(setup.sg));

    RedundancyAwareMemEstimator estimator(
        setup.data.spec().paper_avg_coefficient);
    std::vector<const BucketMemInfo *> group;
    std::uint64_t linear = 0;
    for (const auto &info : infos) {
        group.push_back(&info);
        linear += info.est_bytes;
    }
    EXPECT_LE(estimator.estimateGroup(group), linear);
}

/** Measures the real peak of training one micro-batch. */
std::uint64_t
measureMicroBatchPeak(const EstSetup &setup,
                      const sampling::MicroBatch &mb)
{
    device::Device dev("gpu", util::gib(8));
    nn::SageModel sage(setup.config, 3, &dev.allocator());
    const std::uint64_t static_bytes = dev.allocator().bytesInUse();
    dev.allocator().resetPeak();
    nn::Tensor feats = train::loadFeatures(setup.data, mb.inputNodes(),
                                           &dev.allocator());
    nn::SageModel::ForwardCache cache;
    nn::Tensor logits =
        sage.forward(mb, feats, cache, &dev.allocator());
    auto labels = train::gatherLabels(setup.data, mb.outputNodes());
    auto loss =
        nn::softmaxCrossEntropy(logits, labels, 0, &dev.allocator());
    sage.backward(cache, loss.grad_logits, &dev.allocator());
    return dev.allocator().peakBytes() - static_bytes;
}

/**
 * The Table III property: the redundancy-aware per-group estimates
 * that drive scheduling must land close to the real measured training
 * memory of the generated micro-batches.
 */
class EstimatorAccuracy
    : public ::testing::TestWithParam<nn::AggregatorKind>
{
};

TEST_P(EstimatorAccuracy, PerGroupEstimateTracksMeasured)
{
    EstSetup setup = makeSetup(GetParam(), 192);
    nn::MemoryModel model(setup.config);
    BucketMemEstimator bucket_estimator(model, setup.sg);
    auto infos =
        bucket_estimator.estimate(sampling::bucketizeSeeds(setup.sg));

    RedundancyAwareMemEstimator estimator(
        setup.data.spec().paper_avg_coefficient);

    // Split the batch four ways (the paper's "# batch 4" column).
    GroupingResult grouping = memBalancedGrouping(
        infos, 4, util::gib(64), estimator);
    ASSERT_TRUE(grouping.success);

    MicroBatchGenerator generator;
    double worst_under = 0.0;
    double total_error = 0.0;
    int groups = 0;
    for (const auto &group : grouping.groups) {
        auto mb = generator.generateOne(setup.sg, group);
        const std::uint64_t measured =
            measureMicroBatchPeak(setup, mb);
        const double error =
            (static_cast<double>(group.est_bytes) -
             static_cast<double>(measured)) /
            static_cast<double>(measured);
        total_error += std::abs(error);
        worst_under = std::min(worst_under, error);
        ++groups;
    }
    // Estimates may be conservative (over), but must not badly
    // under-predict (that would cause real OOMs), and the average
    // magnitude must stay within ~80% at this reduced scale.
    EXPECT_GT(worst_under, -0.35);
    EXPECT_LT(total_error / groups, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Aggregators, EstimatorAccuracy,
    ::testing::Values(nn::AggregatorKind::Mean,
                      nn::AggregatorKind::Lstm),
    [](const ::testing::TestParamInfo<nn::AggregatorKind> &info) {
        return nn::aggregatorName(info.param);
    });

} // namespace
} // namespace buffalo::core
