/**
 * @file
 * Tests for model checkpointing: round trips across fresh model
 * instances, and rejection of mismatched architectures.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "nn/checkpoint.h"
#include "nn/gcn_model.h"
#include "nn/sage_model.h"
#include "tensor/ops.h"
#include "util/errors.h"

namespace buffalo::nn {
namespace {

ModelConfig
smallConfig(AggregatorKind kind = AggregatorKind::Mean)
{
    ModelConfig config;
    config.aggregator = kind;
    config.num_layers = 2;
    config.feature_dim = 6;
    config.hidden_dim = 8;
    config.num_classes = 3;
    return config;
}

sampling::MicroBatch
tinyBatch()
{
    sampling::Block bottom;
    bottom.src_nodes = {0, 1, 2, 3};
    bottom.num_dst = 3;
    bottom.offsets = {0, 1, 2, 3};
    bottom.neighbors = {3, 0, 1};
    sampling::Block top;
    top.src_nodes = {0, 1, 2};
    top.num_dst = 2;
    top.offsets = {0, 1, 2};
    top.neighbors = {2, 0};
    sampling::MicroBatch mb;
    mb.blocks = {bottom, top};
    mb.validateChain();
    return mb;
}

TEST(Checkpoint, RoundTripRestoresOutputs)
{
    util::Rng rng(1);
    Tensor feats = Tensor::zeros(4, 6);
    tensor::fillUniform(feats, 1.0f, rng);
    auto mb = tinyBatch();

    SageModel original(smallConfig(), /*seed=*/11);
    SageModel::ForwardCache c1;
    Tensor expected = original.forward(mb, feats, c1);

    std::stringstream buffer;
    saveCheckpoint(buffer, original);

    // A model with DIFFERENT random init must reproduce the original
    // outputs exactly after loading.
    SageModel restored(smallConfig(), /*seed=*/99);
    SageModel::ForwardCache c2;
    Tensor before = restored.forward(mb, feats, c2);
    ASSERT_GT(tensor::maxAbsDiff(before, expected), 1e-6);

    loadCheckpoint(buffer, restored);
    SageModel::ForwardCache c3;
    Tensor after = restored.forward(mb, feats, c3);
    EXPECT_EQ(tensor::maxAbsDiff(after, expected), 0.0);
}

TEST(Checkpoint, WorksForEveryAggregator)
{
    for (auto kind : {AggregatorKind::Mean, AggregatorKind::Pool,
                      AggregatorKind::Lstm}) {
        SageModel a(smallConfig(kind), 1);
        SageModel b(smallConfig(kind), 2);
        std::stringstream buffer;
        saveCheckpoint(buffer, a);
        loadCheckpoint(buffer, b);
        auto pa = a.parameters();
        auto pb = b.parameters();
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t i = 0; i < pa.size(); ++i)
            EXPECT_EQ(tensor::maxAbsDiff(pa[i]->value(),
                                         pb[i]->value()),
                      0.0)
                << aggregatorName(kind);
    }
}

TEST(Checkpoint, RejectsArchitectureMismatch)
{
    SageModel sage(smallConfig(), 1);
    std::stringstream buffer;
    saveCheckpoint(buffer, sage);

    GcnModel gcn(smallConfig(), 1); // different parameter names
    EXPECT_THROW(loadCheckpoint(buffer, gcn), InvalidArgument);
}

TEST(Checkpoint, RejectsShapeMismatch)
{
    SageModel narrow(smallConfig(), 1);
    std::stringstream buffer;
    saveCheckpoint(buffer, narrow);

    ModelConfig wide_config = smallConfig();
    wide_config.hidden_dim = 16;
    SageModel wide(wide_config, 1);
    EXPECT_THROW(loadCheckpoint(buffer, wide), InvalidArgument);
}

TEST(Checkpoint, ShapeMismatchErrorNamesBothShapes)
{
    SageModel narrow(smallConfig(), 1);
    std::stringstream buffer;
    saveCheckpoint(buffer, narrow);

    ModelConfig wide_config = smallConfig();
    wide_config.hidden_dim = 16;
    SageModel wide(wide_config, 1);
    try {
        loadCheckpoint(buffer, wide);
        FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("shape mismatch"), std::string::npos)
            << what;
        // Both the checkpoint's and the model's dimensions must be
        // spelled out so the user can see which config knob is off.
        EXPECT_NE(what.find("8"), std::string::npos) << what;
        EXPECT_NE(what.find("16"), std::string::npos) << what;
        EXPECT_NE(what.find("hidden_dim"), std::string::npos) << what;
    }
}

TEST(Checkpoint, RejectsExtraParameters)
{
    // Build a checkpoint that is a strict superset of the model's
    // parameters: every model parameter matches, plus one orphan
    // entry. The load must fail naming the orphan rather than
    // silently dropping it.
    SageModel model(smallConfig(), 1);
    std::stringstream buffer;
    saveCheckpoint(buffer, model);
    std::string bytes = buffer.str();

    // Bump the entry count (u64 after the 4-byte magic and u32
    // version) and append one 2x2 entry under an unknown name.
    std::uint64_t count = 0;
    std::memcpy(&count, bytes.data() + 8, sizeof(count));
    ++count;
    std::memcpy(bytes.data() + 8, &count, sizeof(count));
    const std::string name = "stale.extra.weight";
    const std::uint64_t name_size = name.size();
    const std::uint64_t dims[2] = {2, 2};
    const float values[4] = {0.0f, 0.0f, 0.0f, 0.0f};
    bytes.append(reinterpret_cast<const char *>(&name_size),
                 sizeof(name_size));
    bytes.append(name);
    bytes.append(reinterpret_cast<const char *>(dims), sizeof(dims));
    bytes.append(reinterpret_cast<const char *>(values),
                 sizeof(values));

    std::istringstream superset(bytes);
    try {
        loadCheckpoint(superset, model);
        FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no matching model parameter"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("stale.extra.weight"), std::string::npos)
            << what;
    }
}

TEST(Checkpoint, FailedLoadLeavesModelUntouched)
{
    SageModel narrow(smallConfig(), 1);
    std::stringstream buffer;
    saveCheckpoint(buffer, narrow);

    ModelConfig wide_config = smallConfig();
    wide_config.hidden_dim = 16;
    SageModel wide(wide_config, /*seed=*/7);
    std::vector<Tensor> before;
    for (Parameter *param : wide.parameters())
        before.push_back(param->value());

    EXPECT_THROW(loadCheckpoint(buffer, wide), InvalidArgument);

    // Validation runs before any copy, so a rejected checkpoint must
    // never leave the module half-loaded.
    auto params = wide.parameters();
    ASSERT_EQ(params.size(), before.size());
    for (std::size_t i = 0; i < params.size(); ++i)
        EXPECT_EQ(tensor::maxAbsDiff(params[i]->value(), before[i]),
                  0.0);
}

TEST(Checkpoint, RejectsCorruption)
{
    SageModel model(smallConfig(), 1);
    std::stringstream buffer;
    saveCheckpoint(buffer, model);
    std::string bytes = buffer.str();

    std::istringstream bad_magic("XXXX" + bytes.substr(4));
    EXPECT_THROW(loadCheckpoint(bad_magic, model), InvalidArgument);

    std::istringstream truncated(bytes.substr(0, bytes.size() - 10));
    EXPECT_THROW(loadCheckpoint(truncated, model), InvalidArgument);
}

TEST(Checkpoint, MissingFileThrowsNotFound)
{
    SageModel model(smallConfig(), 1);
    EXPECT_THROW(loadCheckpointFile("/nonexistent/model.ckpt", model),
                 NotFound);
}

} // namespace
} // namespace buffalo::nn
