/**
 * @file
 * Property tests for the synthetic graph generators: shape statistics,
 * determinism, and power-law verdicts.
 */
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"
#include "util/errors.h"

namespace buffalo::graph {
namespace {

TEST(BarabasiAlbert, DegreeAndScale)
{
    util::Rng rng(1);
    CsrGraph g = generateBarabasiAlbert(2000, 4, rng);
    EXPECT_EQ(g.numNodes(), 2000u);
    // avg degree ~ 2m for undirected BA.
    EXPECT_NEAR(averageDegree(g), 8.0, 1.5);
    EXPECT_EQ(g.countZeroDegreeNodes(), 0u);
}

TEST(BarabasiAlbert, IsPowerLaw)
{
    util::Rng rng(2);
    CsrGraph g = generateBarabasiAlbert(4000, 5, rng);
    PowerLawFit fit = fitPowerLaw(g);
    EXPECT_TRUE(fit.is_power_law);
    EXPECT_GT(fit.alpha, 1.8);
    EXPECT_LT(fit.alpha, 4.0);
    // Heavy tail: the hub dwarfs the average.
    EXPECT_GT(g.maxDegree(), 10 * averageDegree(g));
}

TEST(BarabasiAlbert, Deterministic)
{
    util::Rng a(7), b(7);
    CsrGraph g1 = generateBarabasiAlbert(500, 3, a);
    CsrGraph g2 = generateBarabasiAlbert(500, 3, b);
    EXPECT_EQ(g1.targets(), g2.targets());
    EXPECT_EQ(g1.offsets(), g2.offsets());
}

TEST(BarabasiAlbert, RejectsBadParams)
{
    util::Rng rng(1);
    EXPECT_THROW(generateBarabasiAlbert(5, 5, rng), InvalidArgument);
    EXPECT_THROW(generateBarabasiAlbert(10, 0, rng), InvalidArgument);
}

TEST(ErdosRenyi, EdgeCountMatchesExpectation)
{
    util::Rng rng(3);
    const NodeId n = 1000;
    const double p = 0.01;
    CsrGraph g = generateErdosRenyi(n, p, rng);
    const double expected = p * n * (n - 1) / 2.0;
    // Undirected: numEdges counts both directions.
    EXPECT_NEAR(g.numEdges() / 2.0, expected, expected * 0.15);
}

TEST(ErdosRenyi, NotPowerLaw)
{
    util::Rng rng(4);
    CsrGraph g = generateErdosRenyi(2000, 0.005, rng);
    EXPECT_FALSE(fitPowerLaw(g).is_power_law);
}

TEST(ErdosRenyi, ZeroProbabilityEmpty)
{
    util::Rng rng(5);
    CsrGraph g = generateErdosRenyi(100, 0.0, rng);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(WattsStrogatz, NoRewireIsRingLattice)
{
    util::Rng rng(6);
    CsrGraph g = generateWattsStrogatz(100, 2, 0.0, rng);
    for (NodeId u = 0; u < g.numNodes(); ++u)
        EXPECT_EQ(g.degree(u), 4u);
    // Ring lattice with k=2 per side has clustering 0.5.
    EXPECT_NEAR(averageClusteringCoefficient(g), 0.5, 0.01);
}

TEST(WattsStrogatz, RewiringLowersClustering)
{
    util::Rng rng1(7), rng2(7);
    CsrGraph low = generateWattsStrogatz(1000, 3, 0.05, rng1);
    CsrGraph high = generateWattsStrogatz(1000, 3, 0.9, rng2);
    EXPECT_GT(averageClusteringCoefficient(low),
              averageClusteringCoefficient(high) + 0.1);
}

TEST(WattsStrogatz, RejectsTinyRing)
{
    util::Rng rng(1);
    EXPECT_THROW(generateWattsStrogatz(4, 2, 0.1, rng),
                 InvalidArgument);
}

TEST(Rmat, HeavyTailAndScale)
{
    util::Rng rng(8);
    CsrGraph g = generateRmat(4096, 40000, 0.57, 0.19, 0.19, rng);
    EXPECT_EQ(g.numNodes(), 4096u);
    EXPECT_GT(g.maxDegree(), 8 * averageDegree(g));
}

TEST(Rmat, RejectsBadQuadrants)
{
    util::Rng rng(1);
    EXPECT_THROW(generateRmat(64, 100, 0.5, 0.3, 0.3, rng),
                 InvalidArgument);
}

/** Property: triad probability raises the clustering coefficient. */
class PowerLawClusterTriads : public ::testing::TestWithParam<double>
{
};

TEST_P(PowerLawClusterTriads, ClusteringGrowsWithTriadProbability)
{
    const double p = GetParam();
    util::Rng rng_low(9), rng_high(9);
    CsrGraph base =
        generatePowerLawCluster(1500, 5, 0.0, rng_low);
    CsrGraph clustered = generatePowerLawCluster(1500, 5, p, rng_high);
    EXPECT_GE(averageClusteringCoefficient(clustered) + 0.02,
              averageClusteringCoefficient(base));
}

INSTANTIATE_TEST_SUITE_P(Probabilities, PowerLawClusterTriads,
                         ::testing::Values(0.3, 0.6, 0.9));

TEST(PowerLawCluster, StillPowerLaw)
{
    util::Rng rng(10);
    CsrGraph g = generatePowerLawCluster(4000, 6, 0.6, rng);
    EXPECT_TRUE(fitPowerLaw(g).is_power_law);
}

/** Property: all generators produce valid symmetric-ish CSRs. */
TEST(AllGenerators, ProduceValidGraphs)
{
    util::Rng rng(11);
    std::vector<CsrGraph> graphs;
    graphs.push_back(generateBarabasiAlbert(300, 3, rng));
    graphs.push_back(generateErdosRenyi(300, 0.02, rng));
    graphs.push_back(generateWattsStrogatz(300, 2, 0.3, rng));
    graphs.push_back(generateRmat(256, 2000, 0.45, 0.22, 0.22, rng));
    graphs.push_back(generatePowerLawCluster(300, 3, 0.5, rng));
    for (const auto &g : graphs) {
        ASSERT_GT(g.numEdges(), 0u);
        EXPECT_TRUE(g.rowsSorted());
        // Undirected: every edge present in both directions.
        for (NodeId u = 0; u < g.numNodes(); ++u)
            for (NodeId v : g.neighbors(u))
                EXPECT_TRUE(g.hasEdge(v, u));
    }
}

} // namespace
} // namespace buffalo::graph
