/**
 * @file
 * Stress tests for util::ThreadPool: empty ranges, nested submits and
 * nested parallelFor (the prefetch pipeline runs block generation from
 * inside pool tasks), and the exception-propagation contract.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace buffalo::util {
namespace {

TEST(ThreadPool, EmptyRangeIsANoOp)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](std::size_t) { ++calls; });
    pool.parallelFor(7, 3, [&](std::size_t) { ++calls; });
    pool.parallelFor(0, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);

    // The pool stays fully usable afterwards.
    pool.parallelFor(0, 10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 10000;
    std::vector<std::atomic<int>> seen(kCount);
    pool.parallelFor(0, kCount, [&](std::size_t i) { ++seen[i]; });
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(seen[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ExceptionIsRethrownOnce)
{
    ThreadPool pool(3);
    std::atomic<int> calls{0};
    // Throw at the last index: the throwing chunk abandons only the
    // indices after the throw, so every index still runs exactly once.
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [&](std::size_t i) {
                                      ++calls;
                                      if (i == 99)
                                          throw std::runtime_error(
                                              "bad index");
                                  }),
                 std::runtime_error);
    // No cancellation: sibling chunks all still ran.
    EXPECT_EQ(calls.load(), 100);

    // A throwing body never poisons the workers.
    std::atomic<int> after{0};
    pool.parallelFor(0, 8, [&](std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Two workers, eight outer chunks each running an inner
    // parallelFor: without the caller helping to drain the queue this
    // deadlocks (every worker blocked waiting for its inner chunks).
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.parallelFor(0, 8, [&](std::size_t) {
        pool.parallelFor(0, 8, [&](std::size_t) { ++count; });
    });
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DoublyNestedParallelFor)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.parallelFor(0, 4, [&](std::size_t) {
        pool.parallelFor(0, 4, [&](std::size_t) {
            pool.parallelFor(0, 4, [&](std::size_t) { ++count; });
        });
    });
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedExceptionPropagatesToOuterCaller)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 4,
                                  [&](std::size_t) {
                                      pool.parallelFor(
                                          0, 4, [&](std::size_t j) {
                                              if (j == 2)
                                                  throw std::logic_error(
                                                      "inner");
                                          });
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, NestedSubmitsAllRun)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            for (int j = 0; j < 10; ++j)
                pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 100 + 100 * 10);
}

TEST(ThreadPool, ParallelForFromSubmittedTask)
{
    // parallelFor issued from inside a submitted task while the other
    // workers are saturated with more submitted tasks.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&pool, &count] {
            pool.parallelFor(0, 32, [&](std::size_t) { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 4 * 32);
}

TEST(ThreadPool, GlobalPoolIsASingleton)
{
    EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
    EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, GrainHintBoundsChunkCount)
{
    ThreadPool pool(4);
    // grain 50 over 100 iterations allows at most 2 chunks, so at
    // most 2 distinct threads touch the range.
    std::mutex mutex;
    std::set<std::thread::id> threads;
    ParallelForOptions opts;
    opts.grain = 50;
    pool.parallelFor(0, 100, opts, [&](std::size_t) {
        std::lock_guard<std::mutex> lock(mutex);
        threads.insert(std::this_thread::get_id());
    });
    EXPECT_LE(threads.size(), 2u);

    // A range smaller than 2 * grain runs inline on the caller.
    threads.clear();
    pool.parallelFor(0, 60, opts, [&](std::size_t) {
        std::lock_guard<std::mutex> lock(mutex);
        threads.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(threads.size(), 1u);
    EXPECT_EQ(*threads.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, MaxChunksHintIsRespected)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    ParallelForOptions opts;
    opts.max_chunks = 1;
    // One chunk means the whole range runs inline, in order.
    std::vector<std::size_t> order;
    pool.parallelFor(0, 16, opts, [&](std::size_t i) {
        ++calls;
        order.push_back(i);
    });
    EXPECT_EQ(calls.load(), 16);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, InPoolTaskReflectsTaskContext)
{
    EXPECT_FALSE(ThreadPool::inPoolTask());
    ThreadPool pool(2);
    std::atomic<int> in_task{0};
    std::atomic<int> total{0};
    ParallelForOptions opts;
    opts.grain = 1;
    pool.parallelFor(0, 8, opts, [&](std::size_t) {
        ++total;
        if (ThreadPool::inPoolTask())
            ++in_task;
    });
    // Every chunk — worker-run or help-drained by the caller — counts
    // as a pool task.
    EXPECT_EQ(in_task.load(), total.load());
    EXPECT_FALSE(ThreadPool::inPoolTask());
}

TEST(ThreadPool, NestedParallelForCapsChunksAtWorkerCount)
{
    // A fan-out issued from inside a pool task must not flood the
    // queue: the nested call caps its chunk count at size(), so with
    // 2 workers at most 2 chunks (2 distinct threads) run the inner
    // range.
    ThreadPool pool(2);
    std::mutex mutex;
    std::set<std::thread::id> inner_threads;
    std::atomic<int> count{0};
    ParallelForOptions opts;
    opts.grain = 1;
    pool.parallelFor(0, 2, opts, [&](std::size_t) {
        pool.parallelFor(0, 64, opts, [&](std::size_t) {
            ++count;
            std::lock_guard<std::mutex> lock(mutex);
            inner_threads.insert(std::this_thread::get_id());
        });
    });
    EXPECT_EQ(count.load(), 2 * 64);
    // 2 outer chunks + caller help-draining: at most 3 threads ever
    // touch inner work (2 workers + the waiting caller).
    EXPECT_LE(inner_threads.size(), 3u);
}

} // namespace
} // namespace buffalo::util
