/**
 * @file
 * Tests for bucket splitting and MemBalancedGrouping (Algorithm 4).
 */
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/grouping.h"
#include "util/errors.h"

namespace buffalo::core {
namespace {

DegreeBucket
bucketOf(std::size_t volume, graph::EdgeIndex degree,
         sampling::NodeId base = 0)
{
    DegreeBucket bucket;
    bucket.degree = degree;
    bucket.members.resize(volume);
    std::iota(bucket.members.begin(), bucket.members.end(), base);
    return bucket;
}

BucketMemInfo
infoOf(std::size_t volume, graph::EdgeIndex degree,
       std::uint64_t bytes, sampling::NodeId base = 0)
{
    BucketMemInfo info;
    info.bucket = bucketOf(volume, degree, base);
    info.outputs = volume;
    info.degree = static_cast<double>(degree);
    info.inputs = volume * degree; // no overlap by default
    info.est_bytes = bytes;
    return info;
}

/** Property: splitting is exact and even for many piece counts. */
class SplitProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SplitProperty, EvenExactCover)
{
    const int pieces = GetParam();
    DegreeBucket bucket = bucketOf(103, 10);
    auto micro = splitExplosionBucket(bucket, pieces);

    ASSERT_EQ(micro.size(),
              static_cast<std::size_t>(std::min<std::size_t>(
                  pieces, bucket.members.size())));
    std::set<sampling::NodeId> seen;
    std::size_t min_size = bucket.members.size(), max_size = 0;
    for (const auto &piece : micro) {
        EXPECT_EQ(piece.degree, bucket.degree);
        EXPECT_FALSE(piece.members.empty());
        min_size = std::min(min_size, piece.members.size());
        max_size = std::max(max_size, piece.members.size());
        for (auto member : piece.members)
            EXPECT_TRUE(seen.insert(member).second)
                << "member duplicated across pieces";
    }
    EXPECT_EQ(seen.size(), bucket.members.size());
    EXPECT_LE(max_size - min_size, 1u) << "pieces must be even";
}

INSTANTIATE_TEST_SUITE_P(PieceCounts, SplitProperty,
                         ::testing::Values(1, 2, 3, 7, 16, 103, 200));

TEST(Split, RejectsZeroPieces)
{
    EXPECT_THROW(splitExplosionBucket(bucketOf(4, 2), 0),
                 InvalidArgument);
}

TEST(Grouping, SingleGroupSumsEverything)
{
    RedundancyAwareMemEstimator estimator(0.3);
    std::vector<BucketMemInfo> infos = {infoOf(10, 2, 100),
                                        infoOf(20, 3, 200, 100)};
    auto result = memBalancedGrouping(infos, 1, 1000, estimator);
    ASSERT_TRUE(result.success);
    ASSERT_EQ(result.groups.size(), 1u);
    EXPECT_EQ(result.groups[0].buckets.size(), 2u);
    EXPECT_EQ(result.groups[0].outputCount(), 30u);
}

TEST(Grouping, FailsWhenOverConstraint)
{
    RedundancyAwareMemEstimator estimator(0.3);
    std::vector<BucketMemInfo> infos = {infoOf(10, 2, 600),
                                        infoOf(20, 3, 700, 100)};
    auto result = memBalancedGrouping(infos, 1, 1000, estimator);
    EXPECT_FALSE(result.success);
    EXPECT_GT(result.max_group_bytes, 1000u);
}

TEST(Grouping, SucceedsWithMoreGroups)
{
    RedundancyAwareMemEstimator estimator(0.3);
    std::vector<BucketMemInfo> infos = {infoOf(10, 2, 600),
                                        infoOf(20, 3, 700, 100)};
    auto result = memBalancedGrouping(infos, 2, 1000, estimator);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.groups.size(), 2u);
    for (const auto &group : result.groups)
        EXPECT_LE(group.est_bytes, 1000u);
}

TEST(Grouping, BalancesLoad)
{
    RedundancyAwareMemEstimator estimator(1e-9); // linear pricing
    // Six equal buckets into 3 groups -> 2 each.
    std::vector<BucketMemInfo> infos;
    for (int i = 0; i < 6; ++i)
        infos.push_back(infoOf(5, 2, 100, i * 10));
    auto result = memBalancedGrouping(infos, 3, 10000, estimator);
    ASSERT_TRUE(result.success);
    for (const auto &group : result.groups)
        EXPECT_EQ(group.buckets.size(), 2u);
}

TEST(Grouping, LargestFirstReducesImbalance)
{
    RedundancyAwareMemEstimator estimator(1e-9);
    // Sizes 9, 7, 5, 3, 2, 1 into 2 groups: greedy largest-first
    // yields 14 vs 13.
    std::vector<BucketMemInfo> infos;
    const std::uint64_t sizes[] = {9, 7, 5, 3, 2, 1};
    for (int i = 0; i < 6; ++i)
        infos.push_back(infoOf(2, 2, sizes[i] * 100, i * 10));
    auto result = memBalancedGrouping(infos, 2, 10000, estimator);
    ASSERT_TRUE(result.success);
    std::uint64_t max_bytes = 0, min_bytes = UINT64_MAX;
    for (const auto &group : result.groups) {
        max_bytes = std::max(max_bytes, group.est_bytes);
        min_bytes = std::min(min_bytes, group.est_bytes);
    }
    EXPECT_EQ(max_bytes, 1400u);
    EXPECT_EQ(min_bytes, 1300u);
}

TEST(Grouping, ReservedBytesShrinkBudget)
{
    RedundancyAwareMemEstimator estimator(1e-9);
    std::vector<BucketMemInfo> infos = {infoOf(4, 2, 500)};
    EXPECT_TRUE(
        memBalancedGrouping(infos, 1, 1000, estimator, 0).success);
    EXPECT_FALSE(
        memBalancedGrouping(infos, 1, 1000, estimator, 600).success);
}

TEST(Grouping, DropsEmptyGroups)
{
    RedundancyAwareMemEstimator estimator(0.3);
    std::vector<BucketMemInfo> infos = {infoOf(4, 2, 100)};
    auto result = memBalancedGrouping(infos, 4, 1000, estimator);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.groups.size(), 1u);
}

TEST(Grouping, OutputSeedsUnionPreserved)
{
    RedundancyAwareMemEstimator estimator(0.3);
    std::vector<BucketMemInfo> infos = {infoOf(3, 1, 100, 0),
                                        infoOf(3, 2, 100, 10),
                                        infoOf(3, 3, 100, 20)};
    auto result = memBalancedGrouping(infos, 2, 10000, estimator);
    ASSERT_TRUE(result.success);
    std::set<sampling::NodeId> all;
    for (const auto &group : result.groups)
        for (auto seed : group.outputSeeds())
            EXPECT_TRUE(all.insert(seed).second);
    EXPECT_EQ(all.size(), 9u);
}

TEST(Grouping, FirstFitPolicyAlsoSatisfiesConstraint)
{
    RedundancyAwareMemEstimator estimator(1e-9);
    std::vector<BucketMemInfo> infos;
    for (int i = 0; i < 8; ++i)
        infos.push_back(infoOf(2, 2, 250, i * 10));
    auto result =
        memBalancedGrouping(infos, 2, 1100, estimator, 0,
                            GroupingPolicy::FirstFit);
    ASSERT_TRUE(result.success);
    for (const auto &group : result.groups)
        EXPECT_LE(group.est_bytes, 1100u);
}

} // namespace
} // namespace buffalo::core
