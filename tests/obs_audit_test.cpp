/**
 * @file
 * Memory-audit, event-log, and bench-compare coverage (DESIGN.md,
 * "Memory audit & bench regression"): record aggregation and the JSON
 * export schema, JSONL event emission, the bench_diff tolerance
 * logic CI gates on, and — as a CI-fast analogue of the paper's
 * Table 3 — a bound on the estimator's mean relative error over a
 * real scheduled cost-model epoch.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "device/device.h"
#include "graph/datasets.h"
#include "obs/audit.h"
#include "obs/bench_compare.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/names.h"
#include "train/trainer.h"
#include "util/errors.h"
#include "util/format.h"
#include "util/rng.h"

namespace buffalo {
namespace {

obs::GroupMemRecord
makeRecord(std::uint64_t predicted, std::uint64_t actual)
{
    obs::GroupMemRecord record;
    record.buckets = 2;
    record.outputs = 10;
    record.predicted_bytes = predicted;
    record.actual_bytes = actual;
    return record;
}

TEST(GroupMemRecord, SignedRelativeError)
{
    EXPECT_DOUBLE_EQ(makeRecord(110, 100).signedRelError(), 0.10);
    EXPECT_DOUBLE_EQ(makeRecord(90, 100).signedRelError(), -0.10);
    EXPECT_DOUBLE_EQ(makeRecord(90, 100).absRelError(), 0.10);
    // Unobserved actuals do not poison the aggregate.
    EXPECT_DOUBLE_EQ(makeRecord(90, 0).signedRelError(), 0.0);
}

TEST(MemoryAuditSummary, AddAndMerge)
{
    obs::MemoryAuditSummary a;
    a.add(makeRecord(120, 100)); // over by 20%
    a.add(makeRecord(80, 100));  // under by 20%
    EXPECT_EQ(a.groups, 2u);
    EXPECT_EQ(a.over_predicted, 1u);
    EXPECT_EQ(a.under_predicted, 1u);
    EXPECT_EQ(a.predicted_bytes, 200u);
    EXPECT_EQ(a.actual_bytes, 200u);
    EXPECT_EQ(a.max_actual_bytes, 100u);
    EXPECT_DOUBLE_EQ(a.meanAbsRelError(), 0.20);
    EXPECT_DOUBLE_EQ(a.meanSignedRelError(), 0.0);
    EXPECT_DOUBLE_EQ(a.max_abs_rel_error, 0.20);

    obs::MemoryAuditSummary b;
    b.add(makeRecord(150, 100));
    b.merge(a);
    EXPECT_EQ(b.groups, 3u);
    EXPECT_EQ(b.over_predicted, 2u);
    EXPECT_DOUBLE_EQ(b.max_abs_rel_error, 0.50);
    EXPECT_NEAR(b.meanAbsRelError(), 0.9 / 3.0, 1e-12);
}

TEST(MemoryAudit, EpochBucketingAndJsonExport)
{
    obs::MemoryAudit audit;
    audit.enable(true);
    audit.record(makeRecord(110, 100));
    audit.record(makeRecord(100, 100));
    EXPECT_EQ(audit.currentEpochSummary().groups, 2u);
    audit.endEpoch();
    audit.record(makeRecord(300, 400));
    audit.endEpoch();
    audit.endEpoch(); // empty epoch: no-op, not an empty entry

    const auto epochs = audit.epochs();
    ASSERT_EQ(epochs.size(), 2u);
    EXPECT_EQ(epochs[0].epoch, 0u);
    EXPECT_EQ(epochs[0].records.size(), 2u);
    EXPECT_EQ(epochs[0].records[1].sequence, 1u);
    EXPECT_EQ(epochs[1].records[0].epoch, 1u);
    EXPECT_EQ(epochs[1].summary.under_predicted, 1u);

    const obs::JsonValue doc = obs::JsonValue::parse(audit.toJson());
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.at("epochs").isArray());
    ASSERT_EQ(doc.at("epochs").size(), 2u);
    const obs::JsonValue &first = doc.at("epochs").at(0);
    EXPECT_EQ(first.at("groups").asNumber(), 2.0);
    EXPECT_NEAR(first.at("mean_abs_rel_error").asNumber(), 0.05,
                1e-12);
    ASSERT_EQ(first.at("records").size(), 2u);
    EXPECT_EQ(
        first.at("records").at(0).at("predicted_bytes").asNumber(),
        110.0);

    audit.clear();
    EXPECT_TRUE(audit.epochs().empty());
}

TEST(MemoryAudit, DisabledRecordIsDropped)
{
    obs::MemoryAudit audit;
    audit.record(makeRecord(110, 100));
    audit.endEpoch();
    EXPECT_TRUE(audit.epochs().empty());
}

TEST(EventLog, EmitsParseableJsonLines)
{
    const std::string path =
        testing::TempDir() + "/obs_audit_test_run.jsonl";
    std::remove(path.c_str());

    obs::EventLog log;
    EXPECT_FALSE(log.enabled());
    log.event(obs::names::kEvRunBegin).field("ignored", 1); // inert
    log.open(path);
    log.event(obs::names::kEvRunBegin)
        .field("dataset", "arxiv")
        .field("epochs", 2);
    log.event(obs::names::kEvSchedulerSchedule)
        .field("k", 4)
        .field("explosion", true)
        .field("seconds", 0.25);
    log.close();
    EXPECT_EQ(log.eventsWritten(), 2u);

    const std::string text = obs::readFileText(path);
    std::vector<std::string> lines;
    std::size_t begin = 0;
    while (begin < text.size()) {
        const std::size_t end = text.find('\n', begin);
        lines.push_back(text.substr(begin, end - begin));
        begin = end == std::string::npos ? text.size() : end + 1;
    }
    ASSERT_EQ(lines.size(), 2u);
    const obs::JsonValue first = obs::JsonValue::parse(lines[0]);
    EXPECT_EQ(first.at("ev").asString(),
              obs::names::kEvRunBegin);
    EXPECT_TRUE(first.at("ts_us").isNumber());
    EXPECT_EQ(first.at("dataset").asString(), "arxiv");
    const obs::JsonValue second = obs::JsonValue::parse(lines[1]);
    EXPECT_EQ(second.at("k").asNumber(), 4.0);
    EXPECT_TRUE(second.at("explosion").asBool());
    EXPECT_GE(second.at("ts_us").asNumber(),
              first.at("ts_us").asNumber());
    std::remove(path.c_str());
}

// --- bench_diff comparison logic ------------------------------------

obs::JsonValue
report(const std::string &body)
{
    return obs::JsonValue::parse(
        R"({"bench":"t","metrics":{)" + body + "}}");
}

TEST(BenchCompare, WithinToleranceIsOk)
{
    const auto result = obs::compareBenchReports(
        report(R"("m":{"value":100.0,"tolerance":0.05})"),
        report(R"("m":{"value":104.0,"tolerance":0.05})"));
    EXPECT_TRUE(result.ok());
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_NEAR(result.diffs[0].rel_diff, 0.04, 1e-12);
    EXPECT_EQ(result.bench, "t");
}

TEST(BenchCompare, DriftBeyondToleranceFails)
{
    const auto result = obs::compareBenchReports(
        report(R"("m":{"value":100.0,"tolerance":0.05})"),
        report(R"("m":{"value":110.0,"tolerance":0.05})"));
    EXPECT_FALSE(result.ok());
    const std::string text = obs::formatBenchCompare(result);
    EXPECT_NE(text.find("FAIL"), std::string::npos);
}

TEST(BenchCompare, ZeroToleranceGatesExactly)
{
    EXPECT_TRUE(obs::compareBenchReports(
                    report(R"("k":{"value":7,"tolerance":0})"),
                    report(R"("k":{"value":7,"tolerance":0})"))
                    .ok());
    EXPECT_FALSE(obs::compareBenchReports(
                     report(R"("k":{"value":7,"tolerance":0})"),
                     report(R"("k":{"value":8,"tolerance":0})"))
                     .ok());
}

TEST(BenchCompare, MissingBaselineMetricFails)
{
    const auto result = obs::compareBenchReports(
        report(R"("m":{"value":1.0,"tolerance":0.5})"), report(""));
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_TRUE(result.diffs[0].missing);
}

TEST(BenchCompare, ExtraCandidateMetricIsInformative)
{
    const auto result = obs::compareBenchReports(
        report(R"("m":{"value":1.0,"tolerance":0.5})"),
        report(R"("m":{"value":1.0,"tolerance":0.5},)"
               R"("new":{"value":3.0,"tolerance":0.1})"));
    EXPECT_TRUE(result.ok());
    ASSERT_EQ(result.extra_metrics.size(), 1u);
    EXPECT_EQ(result.extra_metrics[0], "new");
}

TEST(BenchCompare, MalformedDocumentsThrow)
{
    const obs::JsonValue good =
        report(R"("m":{"value":1.0,"tolerance":0.5})");
    EXPECT_THROW(obs::compareBenchReports(
                     obs::JsonValue::parse("[1,2]"), good),
                 InvalidArgument);
    EXPECT_THROW(obs::compareBenchReports(
                     good, obs::JsonValue::parse(R"({"bench":"t"})")),
                 InvalidArgument);
    EXPECT_THROW(
        obs::compareBenchReports(
            obs::JsonValue::parse(
                R"({"bench":"t","metrics":{"m":{"value":1}}})"),
            good),
        InvalidArgument);
    EXPECT_THROW(
        obs::compareBenchReports(
            obs::JsonValue::parse(R"({"bench":"t","metrics":)"
                                  R"({"m":{"value":1,)"
                                  R"("tolerance":-0.1}}})"),
            good),
        InvalidArgument);
}

TEST(BenchCompare, FileRoundTrip)
{
    const std::string base =
        testing::TempDir() + "/bench_base.json";
    const std::string cand =
        testing::TempDir() + "/bench_cand.json";
    obs::writeFileText(
        base, R"({"bench":"t","metrics":)"
              R"({"m":{"value":100,"tolerance":0.1}}})");
    obs::writeFileText(
        cand, R"({"bench":"t","metrics":)"
              R"({"m":{"value":105,"tolerance":0.1}}})");
    EXPECT_TRUE(obs::compareBenchFiles(base, cand).ok());
    EXPECT_THROW(obs::compareBenchFiles(base, base + ".missing"),
                 Error);
    std::remove(base.c_str());
    std::remove(cand.c_str());
}

// --- End-to-end estimator-error bound (Table 3 analogue) ------------

TEST(MemoryAuditEndToEnd, EstimatorErrorBoundedOverScheduledEpoch)
{
    auto data = graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.1);

    train::TrainerOptions options;
    options.model.aggregator = nn::AggregatorKind::Lstm;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 32;
    options.model.num_classes = data.numClasses();
    options.fanouts = {10, 25};
    options.mode = train::ExecutionMode::CostModel;

    // Size the budget off the model's static bytes so the scheduler
    // must split batches into several groups.
    device::Device probe("probe", util::gib(64));
    train::BuffaloTrainer sizing(options, probe);
    const std::uint64_t budget =
        sizing.staticBytes() + util::mib(24);

    device::Device dev("gpu", budget);
    train::BuffaloTrainer trainer(options, dev);
    util::Rng rng(42);
    const train::EpochReport report =
        trainer.trainEpoch(data, 256, rng);

    ASSERT_GT(report.mem_audit.groups, 0u);
    // The paper's Table 3 bound is ~10% at full scale; the reduced
    // simulation runs looser, and CI gates at 25% (both sides of the
    // comparison include the static weight/optimizer bytes).
    EXPECT_LE(report.mem_audit.meanAbsRelError(), 0.25)
        << "estimator drifted from observed peaks; check Eq. 1-2 or "
           "the allocator accounting";
    // Every group must have observed a real peak.
    EXPECT_EQ(report.mem_audit.actual_bytes > 0, true);
    EXPECT_GE(report.mem_audit.max_actual_bytes,
              trainer.staticBytes());
}

} // namespace
} // namespace buffalo
