/**
 * @file
 * Tests for the async micro-batch pipeline: StageQueue semantics,
 * ByteBudget backpressure, FeatureCache LRU/pinning, serial-vs-
 * pipelined loss parity, and the transfer-savings accounting.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pipeline/feature_cache.h"
#include "pipeline/pipeline_trainer.h"
#include "pipeline/prefetcher.h"
#include "pipeline/stage_queue.h"
#include "train/experiment.h"
#include "util/errors.h"
#include "util/format.h"

namespace buffalo::pipeline {
namespace {

// ---------------------------------------------------------------------
// StageQueue

TEST(StageQueue, FifoOrderAndClose)
{
    StageQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    q.close();
    for (int i = 0; i < 5; ++i) {
        auto item = q.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.push(99)); // closed
}

TEST(StageQueue, BoundedBackpressure)
{
    StageQueue<int> q(2);
    std::thread producer([&] {
        for (int i = 0; i < 50; ++i)
            ASSERT_TRUE(q.push(i));
        q.close();
    });
    int expected = 0;
    while (auto item = q.pop()) {
        EXPECT_EQ(*item, expected++);
        EXPECT_LE(q.size(), 2u);
    }
    producer.join();
    EXPECT_EQ(expected, 50);
    EXPECT_LE(q.maxOccupancy(), 2u);
}

TEST(StageQueue, AbortPropagatesToConsumerAndProducer)
{
    StageQueue<int> q(1);
    ASSERT_TRUE(q.push(1)); // queue now full
    std::thread consumer([&] {
        EXPECT_THROW(
            {
                while (q.pop())
                    ;
            },
            std::runtime_error);
    });
    q.abort(std::make_exception_ptr(
        std::runtime_error("stage failed")));
    consumer.join();
    EXPECT_FALSE(q.push(2)); // producers unwind instead of blocking
    EXPECT_TRUE(q.aborted());
}

TEST(ByteBudget, CapsAndAdmitsOversizeWhenEmpty)
{
    ByteBudget budget(100);
    EXPECT_TRUE(budget.acquire(60));
    EXPECT_TRUE(budget.acquire(40));
    EXPECT_EQ(budget.bytesInUse(), 100u);

    std::atomic<bool> acquired{false};
    std::thread waiter([&] {
        EXPECT_TRUE(budget.acquire(500)); // oversize: admitted at 0
        acquired = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(acquired.load());
    budget.release(60);
    budget.release(40);
    waiter.join();
    EXPECT_TRUE(acquired.load());
    budget.release(500);
    EXPECT_EQ(budget.bytesInUse(), 0u);
}

TEST(ByteBudget, CancelUnblocksWaiters)
{
    ByteBudget budget(10);
    EXPECT_TRUE(budget.acquire(10));
    std::thread waiter([&] { EXPECT_FALSE(budget.acquire(5)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    budget.cancel();
    waiter.join();
}

// ---------------------------------------------------------------------
// FeatureCache

FeatureCacheOptions
cacheOptions(int dim, std::uint64_t rows, bool payload = true)
{
    FeatureCacheOptions options;
    options.feature_dim = dim;
    options.capacity_bytes = rows * dim * sizeof(float);
    options.store_payload = payload;
    return options;
}

TEST(FeatureCache, LruEvictionOrder)
{
    FeatureCache cache(cacheOptions(4, 3));
    ASSERT_TRUE(cache.enabled());
    EXPECT_EQ(cache.capacityRows(), 3u);

    std::vector<float> row(4, 1.0f);
    cache.insert(10, row);
    cache.insert(11, row);
    cache.insert(12, row);
    // Refresh 10 so 11 becomes the LRU victim.
    EXPECT_TRUE(cache.lookup(10, {}));
    cache.insert(13, row); // evicts 11
    EXPECT_TRUE(cache.lookup(10, {}));
    EXPECT_FALSE(cache.lookup(11, {}));
    EXPECT_TRUE(cache.lookup(12, {}));
    EXPECT_TRUE(cache.lookup(13, {}));

    const FeatureCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.insertions, 4u);
    EXPECT_EQ(stats.resident_nodes, 3u);
    EXPECT_EQ(stats.hits, 4u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(FeatureCache, PayloadRoundTrips)
{
    FeatureCache cache(cacheOptions(3, 2));
    const std::vector<float> row = {1.5f, -2.0f, 0.25f};
    cache.insert(7, row);
    std::vector<float> out(3, 0.0f);
    ASSERT_TRUE(cache.lookup(7, out));
    EXPECT_EQ(out, row);
}

TEST(FeatureCache, PresenceOnlyModeTracksCapacity)
{
    FeatureCache cache(cacheOptions(64, 2, /*payload=*/false));
    cache.insert(1, {});
    cache.insert(2, {});
    cache.insert(3, {}); // evicts 1
    EXPECT_FALSE(cache.lookup(1, {}));
    EXPECT_TRUE(cache.lookup(2, {}));
    EXPECT_EQ(cache.stats().bytes_in_use, 2u * 64u * sizeof(float));
}

TEST(FeatureCache, DisabledCacheRefusesEverything)
{
    FeatureCache cache(cacheOptions(4, 0));
    EXPECT_FALSE(cache.enabled());
    cache.insert(1, std::vector<float>(4, 0.0f));
    EXPECT_FALSE(cache.lookup(1, {}));
    EXPECT_EQ(cache.stats().resident_nodes, 0u);
}

TEST(FeatureCache, PinnedHotNodesSurviveEviction)
{
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Cora, 42, 0.5);
    FeatureCache cache(cacheOptions(data.featureDim(), 4));
    cache.pinHotSet(data, 2);
    EXPECT_EQ(cache.stats().pinned_nodes, 2u);

    // Find the two pinned (highest-degree) nodes.
    const graph::CsrGraph &g = data.graph();
    std::vector<graph::NodeId> pinned;
    for (graph::NodeId u = 0; u < g.numNodes(); ++u)
        if (cache.lookup(u, {}))
            pinned.push_back(u);
    ASSERT_EQ(pinned.size(), 2u);

    // Flood with unpinned rows; pinned entries must survive.
    std::vector<float> row(data.featureDim(), 0.0f);
    for (graph::NodeId u = 0; u < 50; ++u) {
        if (std::find(pinned.begin(), pinned.end(), u) ==
            pinned.end())
            cache.insert(u, row);
    }
    for (const graph::NodeId u : pinned)
        EXPECT_TRUE(cache.lookup(u, {})) << "pinned node " << u;

    // Pinned rows hold the dataset's actual features.
    std::vector<float> expect(data.featureDim());
    std::vector<float> got(data.featureDim());
    data.fillFeatures(pinned.front(), expect);
    ASSERT_TRUE(cache.lookup(pinned.front(), got));
    EXPECT_EQ(got, expect);
}

// ---------------------------------------------------------------------
// Serial-vs-pipelined parity

graph::Dataset &
arxiv()
{
    static graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.08);
    return data;
}

train::TrainerOptions
baseOptions(const graph::Dataset &data)
{
    train::TrainerOptions options;
    options.model.aggregator = nn::AggregatorKind::Mean;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    return options;
}

/** Serial reference epochs via the stock runTraining loop. */
std::vector<train::EpochReport>
serialEpochs(const graph::Dataset &data,
             const train::TrainerOptions &options,
             std::uint64_t budget, int epochs, std::size_t batch_size,
             std::uint64_t rng_seed)
{
    device::Device dev("serial", budget);
    train::BuffaloTrainer trainer(options, dev);
    util::Rng rng(rng_seed);
    return train::runTraining(trainer, data, epochs, batch_size, rng);
}

TEST(PipelineParity, LossMatchesSerialAcrossSeedsAndEpochs)
{
    auto &data = arxiv();
    train::TrainerOptions options = baseOptions(data);
    const std::uint64_t budget = util::gib(4);
    constexpr int kEpochs = 2;
    constexpr std::size_t kBatch = 64;

    for (const std::uint64_t seed : {1ull, 202ull}) {
        const auto serial = serialEpochs(data, options, budget,
                                         kEpochs, kBatch, seed);

        device::Device dev("pipelined", budget);
        train::TrainerOptions pipelined_options = options;
        pipelined_options.pipeline.prefetch_depth = 2;
        pipelined_options.pipeline.feature_cache_bytes = util::mib(4);
        pipelined_options.pipeline.pinned_hot_nodes = 32;
        PipelineTrainer trainer(pipelined_options, dev);
        util::Rng rng(seed);
        for (int epoch = 0; epoch < kEpochs; ++epoch) {
            const train::EpochReport stats =
                trainer.trainEpoch(data, kBatch, rng);
            ASSERT_NEAR(stats.mean_loss, serial[epoch].mean_loss,
                        1e-12)
                << "seed " << seed << " epoch " << epoch;
            ASSERT_DOUBLE_EQ(stats.accuracy, serial[epoch].accuracy);
        }
    }
}

TEST(PipelineParity, CacheHitsReduceTransferOnRedundantWorkload)
{
    auto &data = arxiv();
    train::TrainerOptions options = baseOptions(data);
    const std::uint64_t budget = util::gib(4);
    constexpr std::size_t kBatch = 48;

    // Uncached reference traffic.
    device::Device plain_dev("plain", budget);
    PipelineTrainer plain(options, plain_dev);
    util::Rng plain_rng(9);
    const train::EpochReport plain_stats =
        plain.trainEpoch(data, kBatch, plain_rng);
    EXPECT_EQ(plain_stats.transfer_saved_bytes, 0u);

    device::Device dev("cached", budget);
    train::TrainerOptions cached_options = options;
    cached_options.pipeline.prefetch_depth = 2;
    cached_options.pipeline.feature_cache_bytes = util::mib(8);
    cached_options.pipeline.pinned_hot_nodes = 64;
    PipelineTrainer trainer(cached_options, dev);
    util::Rng rng(9);
    const train::EpochReport stats =
        trainer.trainEpoch(data, kBatch, rng);

    // Adjacent micro-batches share input nodes (paper Eq. 1-2), so a
    // warm cache must see hits and shed exactly that much traffic.
    EXPECT_GT(stats.cache.hits, 0u);
    EXPECT_GT(stats.cache.hitRate(), 0.0);
    EXPECT_GT(stats.transfer_saved_bytes, 0u);
    EXPECT_EQ(stats.transfer_bytes + stats.transfer_saved_bytes,
              plain_stats.transfer_bytes);
    EXPECT_EQ(dev.transferSavedBytes(), stats.transfer_saved_bytes);

    // The discount is accounting only: the numbers stay identical.
    EXPECT_NEAR(stats.mean_loss, plain_stats.mean_loss, 1e-12);
}

TEST(PipelineParity, HostBudgetBackpressureStillCompletes)
{
    auto &data = arxiv();
    train::TrainerOptions options = baseOptions(data);
    const std::uint64_t budget = util::gib(4);
    constexpr std::size_t kBatch = 64;

    const auto serial =
        serialEpochs(data, options, budget, 1, kBatch, 5);

    device::Device dev("tight-host", budget);
    train::TrainerOptions tight_options = options;
    tight_options.pipeline.prefetch_depth = 4;
    // Far below one batch's staging cost: batches are admitted one at
    // a time through the oversize path.
    tight_options.pipeline.host_memory_budget = 1024;
    PipelineTrainer trainer(tight_options, dev);
    util::Rng rng(5);
    const train::EpochReport stats =
        trainer.trainEpoch(data, kBatch, rng);
    EXPECT_NEAR(stats.mean_loss, serial[0].mean_loss, 1e-12);
    EXPECT_GT(stats.stages.peak_host_bytes, 0u);
}

TEST(PipelineModel, OverlapStrictlyBeatsSerialAccounting)
{
    auto &data = arxiv();
    train::TrainerOptions options = baseOptions(data);
    options.mode = train::ExecutionMode::CostModel;

    device::Device dev("gpu", util::mib(48));
    options.pipeline.prefetch_depth = 2;
    options.pipeline.feature_cache_bytes = util::mib(2);
    PipelineTrainer trainer(options, dev);
    util::Rng rng(3);
    // arxiv-sim @0.08 has 128 train nodes: batch 32 -> 4 batches.
    const train::EpochReport stats =
        trainer.trainEpoch(data, 32, rng);

    ASSERT_GT(stats.num_batches, 1);
    EXPECT_GT(stats.device_seconds, 0.0);
    EXPECT_GT(stats.prep_seconds, 0.0);
    EXPECT_LT(stats.pipelined_seconds, stats.serial_seconds);
    EXPECT_GE(stats.pipelined_seconds, stats.device_seconds);
}

TEST(Prefetcher, StageErrorPropagatesToConsumer)
{
    auto &data = arxiv();
    nn::ModelConfig config;
    config.aggregator = nn::AggregatorKind::Mean;
    config.num_layers = 2;
    config.feature_dim = data.featureDim();
    config.hidden_dim = 16;
    config.num_classes = data.numClasses();
    nn::MemoryModel model(config);

    core::SchedulerOptions sched;
    sched.mem_constraint = 1; // infeasible: scheduling must fail
    sched.max_groups = 2;

    std::vector<graph::NodeList> batches = {graph::NodeList(
        data.trainNodes().begin(), data.trainNodes().begin() + 32)};
    util::Rng rng(11);
    Prefetcher prefetcher(data, batches, {5, 10}, model, sched,
                          /*stage_features=*/false, PipelineOptions{},
                          nullptr, rng);
    EXPECT_THROW(
        {
            while (prefetcher.next())
                ;
        },
        buffalo::Error);
}

} // namespace
} // namespace buffalo::pipeline
