/**
 * @file
 * Tests that the analytic memory model tracks reality: its byte
 * estimates must bound/track the tracking allocator's measured peak
 * during real numeric training. This is the calibration the paper's
 * Table III error metric rests on.
 */
#include <gtest/gtest.h>

#include "device/device.h"
#include "graph/datasets.h"
#include "nn/loss.h"
#include "nn/memory_model.h"
#include "nn/sage_model.h"
#include "sampling/block_generator.h"
#include "train/feature_loader.h"
#include "util/format.h"
#include "util/rng.h"

namespace buffalo::nn {
namespace {

sampling::MicroBatch
sampleBatch(const graph::Dataset &data, int layers,
            std::size_t num_seeds, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<int> fanouts(layers, 10);
    sampling::NeighborSampler sampler(fanouts);
    graph::NodeList seeds(
        data.trainNodes().begin(),
        data.trainNodes().begin() +
            std::min(num_seeds, data.trainNodes().size()));
    auto sg = sampler.sample(data.graph(), seeds, rng);
    graph::NodeList all(sg.numSeeds());
    for (graph::NodeId i = 0; i < sg.numSeeds(); ++i)
        all[i] = i;
    sampling::FastBlockGenerator gen;
    return gen.generate(sg, all);
}

ModelConfig
smallConfig(const graph::Dataset &data, AggregatorKind kind)
{
    ModelConfig config;
    config.aggregator = kind;
    config.num_layers = 2;
    config.feature_dim = data.featureDim();
    config.hidden_dim = 16;
    config.num_classes = data.numClasses();
    return config;
}

TEST(MemoryModel, BucketBytesMonotonic)
{
    ModelConfig config;
    config.feature_dim = 32;
    config.hidden_dim = 64;
    config.num_classes = 8;
    MemoryModel model(config);
    EXPECT_LT(model.bucketActivationBytes(0, 10, 4),
              model.bucketActivationBytes(0, 20, 4));
    EXPECT_LT(model.bucketActivationBytes(0, 10, 4),
              model.bucketActivationBytes(0, 10, 8));
}

TEST(MemoryModel, LstmCostsMoreThanMean)
{
    ModelConfig mean_config;
    mean_config.aggregator = AggregatorKind::Mean;
    mean_config.feature_dim = 32;
    mean_config.hidden_dim = 64;
    mean_config.num_classes = 8;
    ModelConfig lstm_config = mean_config;
    lstm_config.aggregator = AggregatorKind::Lstm;

    MemoryModel mean_model(mean_config), lstm_model(lstm_config);
    EXPECT_GT(lstm_model.bucketActivationBytes(0, 100, 10),
              3 * mean_model.bucketActivationBytes(0, 100, 10));
    EXPECT_GT(lstm_model.weightBytes(), mean_model.weightBytes());
}

TEST(MemoryModel, WeightBytesMatchRealModel)
{
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Cora, 42, 0.2);
    for (auto kind : {AggregatorKind::Mean, AggregatorKind::Pool,
                      AggregatorKind::Lstm}) {
        ModelConfig config = smallConfig(data, kind);
        MemoryModel analytic(config);
        SageModel model(config, 1);
        std::uint64_t real = 0;
        for (Parameter *p : model.parameters())
            real += p->bytes();
        EXPECT_EQ(analytic.weightBytes(), real)
            << aggregatorName(kind);
    }
}

/** Property: analytic micro-batch bytes track the measured peak. */
class MemoryModelCalibration
    : public ::testing::TestWithParam<AggregatorKind>
{
};

TEST_P(MemoryModelCalibration, TracksMeasuredPeak)
{
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.05);
    ModelConfig config = smallConfig(data, GetParam());
    MemoryModel analytic(config);

    sampling::MicroBatch mb = sampleBatch(data, 2, 64, 7);

    device::Device dev("gpu", util::gib(4));
    SageModel model(config, 3, &dev.allocator());
    dev.allocator().resetPeak();
    const std::uint64_t baseline = dev.allocator().bytesInUse();

    Tensor feats =
        train::loadFeatures(data, mb.inputNodes(), &dev.allocator());
    SageModel::ForwardCache cache;
    Tensor logits = model.forward(mb, feats, cache, &dev.allocator());
    auto labels = train::gatherLabels(data, mb.outputNodes());
    auto loss = softmaxCrossEntropy(logits, labels, 0,
                                    &dev.allocator());
    model.backward(cache, loss.grad_logits, &dev.allocator());

    const std::uint64_t measured =
        dev.allocator().peakBytes() - baseline;
    const std::uint64_t predicted = analytic.microBatchBytes(mb);
    // The analytic model must be within 2x of the measured peak in
    // both directions — tight enough that scheduling decisions based
    // on it match decisions based on real memory.
    EXPECT_GT(predicted, measured / 2)
        << util::formatBytes(predicted) << " vs measured "
        << util::formatBytes(measured);
    EXPECT_LT(predicted, measured * 2)
        << util::formatBytes(predicted) << " vs measured "
        << util::formatBytes(measured);
}

INSTANTIATE_TEST_SUITE_P(
    Aggregators, MemoryModelCalibration,
    ::testing::Values(AggregatorKind::Mean, AggregatorKind::Pool,
                      AggregatorKind::Lstm),
    [](const ::testing::TestParamInfo<AggregatorKind> &info) {
        return aggregatorName(info.param);
    });

TEST(MemoryModel, FlopsGrowWithDepthAndHidden)
{
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Cora, 42, 0.2);
    sampling::MicroBatch mb = sampleBatch(data, 2, 32, 9);

    ModelConfig small = smallConfig(data, AggregatorKind::Mean);
    ModelConfig wide = small;
    wide.hidden_dim = 64;
    EXPECT_LT(MemoryModel(small).microBatchFlops(mb),
              MemoryModel(wide).microBatchFlops(mb));
}

TEST(MemoryModel, TransferBytesIncludeAllPayloads)
{
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Cora, 42, 0.2);
    sampling::MicroBatch mb = sampleBatch(data, 2, 32, 11);
    ModelConfig config = smallConfig(data, AggregatorKind::Mean);
    MemoryModel model(config);
    EXPECT_GT(model.transferBytes(mb),
              model.inputFeatureBytes(mb.inputNodes().size()));
    EXPECT_GT(model.transferBytes(mb), mb.structureBytes());
}

TEST(MemoryModel, CountsApiConsistent)
{
    ModelConfig config;
    config.feature_dim = 16;
    config.hidden_dim = 16;
    config.num_classes = 4;
    MemoryModel model(config);
    EXPECT_EQ(model.bucketActivationBytes(0, 7, 3),
              model.layerActivationBytesFromCounts(0, 7, 21, 28));
}

} // namespace
} // namespace buffalo::nn
