/**
 * @file
 * Tests for the inference/evaluation path: budget-safe micro-batched
 * evaluation, and accuracy improving with training.
 */
#include <gtest/gtest.h>

#include "train/evaluator.h"
#include "train/experiment.h"
#include "util/format.h"

namespace buffalo::train {
namespace {

graph::Dataset &
arxiv()
{
    static graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.08);
    return data;
}

TrainerOptions
baseOptions(const graph::Dataset &data)
{
    TrainerOptions options;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    options.learning_rate = 1e-2;
    return options;
}

TEST(Evaluator, ReportsAllFields)
{
    auto &data = arxiv();
    device::Device dev("gpu", util::gib(4));
    BuffaloTrainer trainer(baseOptions(data), dev);
    util::Rng rng(1);
    auto stats = evaluate(trainer, data, data.trainNodes(), rng);
    EXPECT_EQ(stats.nodes, data.trainNodes().size());
    EXPECT_GT(stats.loss, 0.0);
    EXPECT_GE(stats.accuracy, 0.0);
    EXPECT_LE(stats.accuracy, 1.0);
    EXPECT_GE(stats.micro_batches, 1);
    EXPECT_GT(stats.peak_device_bytes, 0u);
}

TEST(Evaluator, RespectsTightBudget)
{
    auto &data = arxiv();
    TrainerOptions options = baseOptions(data);
    options.model.aggregator = nn::AggregatorKind::Lstm;
    device::Device dev("gpu", util::mib(8));
    BuffaloTrainer trainer(options, dev);
    util::Rng rng(2);
    auto stats = evaluate(trainer, data, data.trainNodes(), rng);
    EXPECT_GT(stats.micro_batches, 1);
    EXPECT_LE(stats.peak_device_bytes, util::mib(8));
}

TEST(Evaluator, AccuracyImprovesWithTraining)
{
    auto &data = arxiv();
    device::Device dev("gpu", util::gib(4));
    BuffaloTrainer trainer(baseOptions(data), dev);
    util::Rng rng(3);

    auto before = evaluate(trainer, data, data.trainNodes(), rng);
    runTraining(trainer, data, /*epochs=*/6, /*batch_size=*/64, rng);
    auto after = evaluate(trainer, data, data.trainNodes(), rng);

    EXPECT_LT(after.loss, before.loss);
    EXPECT_GT(after.accuracy, before.accuracy);
}

TEST(Evaluator, RejectsEmptyNodeSet)
{
    auto &data = arxiv();
    device::Device dev("gpu", util::gib(1));
    BuffaloTrainer trainer(baseOptions(data), dev);
    util::Rng rng(4);
    EXPECT_THROW(evaluate(trainer, data, {}, rng), InvalidArgument);
}

TEST(Evaluator, WorksForGcnAndGat)
{
    auto &data = arxiv();
    for (auto kind : {ModelKind::Gcn, ModelKind::Gat}) {
        TrainerOptions options = baseOptions(data);
        options.model_kind = kind;
        device::Device dev("gpu", util::gib(4));
        BuffaloTrainer trainer(options, dev);
        util::Rng rng(5);
        auto stats = evaluate(trainer, data, data.trainNodes(), rng);
        EXPECT_EQ(stats.nodes, data.trainNodes().size())
            << modelKindName(kind);
    }
}

} // namespace
} // namespace buffalo::train
