/**
 * @file
 * Tests for the partitioning substrate: Random/Range balance, the
 * multilevel MetisLike partitioner's quality and determinism, and the
 * cut/balance metrics.
 */
#include <gtest/gtest.h>

#include "graph/coo.h"
#include "graph/generators.h"
#include "partition/metis_like.h"
#include "partition/partitioner.h"
#include "util/errors.h"

namespace buffalo::partition {
namespace {

WeightedGraph
communityGraph(std::uint64_t seed = 1)
{
    util::Rng rng(seed);
    // Clear community structure: a good partitioner should find it.
    return WeightedGraph::fromUnweighted(
        graph::generateCommunityPowerLaw(1200, 40, 0.4, 2, rng));
}

std::vector<std::uint64_t>
partWeights(const WeightedGraph &wg, const Assignment &assignment,
            int parts)
{
    std::vector<std::uint64_t> weights(parts, 0);
    for (NodeId u = 0; u < wg.numNodes(); ++u)
        weights[assignment[u]] += wg.node_weights[u];
    return weights;
}

TEST(WeightedGraph, FromUnweightedUnitWeights)
{
    WeightedGraph wg = communityGraph();
    wg.validate();
    EXPECT_EQ(wg.totalNodeWeight(), wg.numNodes());
    for (auto w : wg.edge_weights)
        EXPECT_EQ(w, 1u);
}

TEST(Metrics, EdgeCutCountsCrossingsOnce)
{
    // Path 0-1-2 (undirected), split {0} | {1,2}: one crossing edge.
    graph::CooBuilder builder(3);
    builder.addUndirectedEdge(0, 1);
    builder.addUndirectedEdge(1, 2);
    WeightedGraph wg = WeightedGraph::fromUnweighted(builder.toCsr());
    Assignment assignment = {0, 1, 1};
    EXPECT_EQ(edgeCutWeight(wg, assignment), 1u);
    EXPECT_EQ(edgeCutWeight(wg, {0, 0, 0}), 0u);
}

TEST(Metrics, BalanceFactor)
{
    WeightedGraph wg = communityGraph();
    Assignment all_in_one(wg.numNodes(), 0);
    EXPECT_NEAR(balanceFactor(wg, all_in_one, 2), 2.0, 1e-9);
}

TEST(RandomPartitioner, EvenSizes)
{
    WeightedGraph wg = communityGraph();
    RandomPartitioner random(7);
    Assignment assignment = random.partition(wg, 4);
    auto weights = partWeights(wg, assignment, 4);
    for (auto w : weights)
        EXPECT_NEAR(static_cast<double>(w), wg.numNodes() / 4.0,
                    1.0);
}

TEST(RandomPartitioner, DifferentSeedsDiffer)
{
    WeightedGraph wg = communityGraph();
    RandomPartitioner a(1), b(2);
    EXPECT_NE(a.partition(wg, 4), b.partition(wg, 4));
}

TEST(RangePartitioner, ContiguousChunks)
{
    WeightedGraph wg = communityGraph();
    RangePartitioner range;
    Assignment assignment = range.partition(wg, 3);
    // Non-decreasing part ids over the index space.
    for (NodeId u = 1; u < wg.numNodes(); ++u)
        EXPECT_LE(assignment[u - 1], assignment[u]);
    auto weights = partWeights(wg, assignment, 3);
    EXPECT_GT(weights[0], 0u);
    EXPECT_GT(weights[2], 0u);
}

TEST(MetisLike, BeatsRandomOnCut)
{
    WeightedGraph wg = communityGraph();
    MetisLike metis;
    RandomPartitioner random(3);

    Assignment metis_assignment = metis.partition(wg, 4);
    Assignment random_assignment = random.partition(wg, 4);
    const auto metis_cut = edgeCutWeight(wg, metis_assignment);
    const auto random_cut = edgeCutWeight(wg, random_assignment);
    // Multilevel partitioning must find the community structure:
    // demand at least a 2x cut improvement over random.
    EXPECT_LT(metis_cut * 2, random_cut);
}

TEST(MetisLike, RespectsBalance)
{
    WeightedGraph wg = communityGraph(5);
    MetisLikeOptions options;
    options.balance_factor = 1.10;
    MetisLike metis(options);
    Assignment assignment = metis.partition(wg, 4);
    EXPECT_LT(balanceFactor(wg, assignment, 4), 1.25);
    EXPECT_EQ(metis.lastStats().balance,
              balanceFactor(wg, assignment, 4));
}

TEST(MetisLike, DeterministicForSeed)
{
    WeightedGraph wg = communityGraph(9);
    MetisLikeOptions options;
    options.seed = 42;
    MetisLike a(options), b(options);
    EXPECT_EQ(a.partition(wg, 3), b.partition(wg, 3));
}

TEST(MetisLike, SinglePartTrivial)
{
    WeightedGraph wg = communityGraph(11);
    MetisLike metis;
    Assignment assignment = metis.partition(wg, 1);
    for (int part : assignment)
        EXPECT_EQ(part, 0);
    EXPECT_EQ(metis.lastStats().edge_cut, 0u);
}

TEST(MetisLike, EmptyGraph)
{
    WeightedGraph wg =
        WeightedGraph::fromUnweighted(graph::CsrGraph());
    MetisLike metis;
    EXPECT_TRUE(metis.partition(wg, 4).empty());
}

TEST(MetisLike, UsesMultipleLevels)
{
    WeightedGraph wg = communityGraph(13);
    MetisLike metis;
    metis.partition(wg, 2);
    EXPECT_GE(metis.lastStats().levels, 2);
}

TEST(MetisLike, HonorsEdgeWeights)
{
    // Two triangles joined by a heavy edge vs. light edges: the cut
    // should avoid the heavy edge.
    graph::CooBuilder builder(6);
    builder.addUndirectedEdge(0, 1);
    builder.addUndirectedEdge(1, 2);
    builder.addUndirectedEdge(0, 2);
    builder.addUndirectedEdge(3, 4);
    builder.addUndirectedEdge(4, 5);
    builder.addUndirectedEdge(3, 5);
    builder.addUndirectedEdge(2, 3); // bridge
    WeightedGraph wg = WeightedGraph::fromUnweighted(builder.toCsr());

    MetisLikeOptions options;
    options.coarsen_target = 6; // no coarsening on 6 nodes
    MetisLike metis(options);
    Assignment assignment = metis.partition(wg, 2);
    // The bridge should be the only cut edge.
    EXPECT_EQ(edgeCutWeight(wg, assignment), 1u);
    EXPECT_EQ(assignment[0], assignment[1]);
    EXPECT_EQ(assignment[1], assignment[2]);
    EXPECT_EQ(assignment[3], assignment[4]);
    EXPECT_NE(assignment[0], assignment[3]);
}

TEST(Partitioners, RejectBadPartCounts)
{
    WeightedGraph wg = communityGraph(15);
    RandomPartitioner random(1);
    RangePartitioner range;
    MetisLike metis;
    EXPECT_THROW(random.partition(wg, 0), InvalidArgument);
    EXPECT_THROW(range.partition(wg, 0), InvalidArgument);
    EXPECT_THROW(metis.partition(wg, 0), InvalidArgument);
}

} // namespace
} // namespace buffalo::partition
