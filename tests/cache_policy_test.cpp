/**
 * @file
 * Tests for the pluggable cache-policy API (DESIGN.md, "Pipeline &
 * feature cache"): presample determinism, degree-vs-frequency pin-set
 * divergence on a skewed graph, policy-name round trips, consistency
 * of FeatureCacheStats snapshots under concurrent mutation, and
 * bitwise parity of the serve path with and without a feature cache.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "graph/datasets.h"
#include "pipeline/cache_policy.h"
#include "pipeline/feature_cache.h"
#include "sampling/presample.h"
#include "serve/serve_loop.h"
#include "util/errors.h"
#include "util/format.h"

namespace buffalo::pipeline {
namespace {

// --- Presample pass --------------------------------------------------

TEST(Presample, DeterministicForFixedSeed)
{
    const graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Cora, 42, 0.25);
    sampling::PresampleOptions options;
    options.num_batches = 6;
    options.batch_size = 32;
    options.seed = 123;

    const sampling::PresampleResult a = sampling::presampleFrequencies(
        data.graph(), data.trainNodes(), {4, 4}, options);
    const sampling::PresampleResult b = sampling::presampleFrequencies(
        data.graph(), data.trainNodes(), {4, 4}, options);
    EXPECT_EQ(a.frequency, b.frequency);
    EXPECT_EQ(a.batches, 6);
    EXPECT_EQ(a.node_visits, b.node_visits);
    EXPECT_GT(a.node_visits, 0u);

    // A different seed explores a different trajectory.
    options.seed = 124;
    const sampling::PresampleResult c = sampling::presampleFrequencies(
        data.graph(), data.trainNodes(), {4, 4}, options);
    EXPECT_NE(a.frequency, c.frequency);
}

/**
 * Two components: a star around hub 0 (degree 9) and a ring of
 * moderate-degree nodes 10..17 (degree 2 each). Seeds live only in
 * the ring, so the hub is degree-hot but never sampled.
 */
graph::Dataset
skewedDataset()
{
    const graph::NodeId n = 18;
    std::vector<std::vector<graph::NodeId>> adj(n);
    for (graph::NodeId leaf = 1; leaf <= 9; ++leaf) {
        adj[0].push_back(leaf);
        adj[leaf].push_back(0);
    }
    for (graph::NodeId i = 10; i < n; ++i) {
        const graph::NodeId next = i + 1 < n ? i + 1 : 10;
        adj[i].push_back(next);
        adj[next].push_back(i);
    }
    std::vector<graph::EdgeIndex> offsets = {0};
    std::vector<graph::NodeId> targets;
    for (graph::NodeId u = 0; u < n; ++u) {
        std::sort(adj[u].begin(), adj[u].end());
        targets.insert(targets.end(), adj[u].begin(), adj[u].end());
        offsets.push_back(static_cast<graph::EdgeIndex>(targets.size()));
    }
    std::vector<std::int32_t> labels(n);
    for (graph::NodeId u = 0; u < n; ++u)
        labels[u] = static_cast<std::int32_t>(u % 2);
    return graph::makeDataset(
        "skewed", graph::CsrGraph(std::move(offsets), std::move(targets)),
        std::move(labels), 2, 8, 0.1, 7);
}

TEST(CachePolicy, DegreeAndFrequencyDivergeOnSkewedGraph)
{
    const graph::Dataset data = skewedDataset();
    graph::NodeList ring_seeds;
    for (graph::NodeId u = 10; u < 18; ++u)
        ring_seeds.push_back(u);

    sampling::PresampleOptions presample;
    presample.num_batches = 4;
    presample.batch_size = 4;
    presample.seed = 99;

    CachePolicyBuildReport report;
    const auto degree = makeCachePolicy(
        train::CachePolicyKind::Degree, data, {2, 2}, ring_seeds,
        presample, nullptr);
    const auto frequency = makeCachePolicy(
        train::CachePolicyKind::PresampleFrequency, data, {2, 2},
        ring_seeds, presample, &report);
    EXPECT_EQ(report.presample_batches, 4);
    EXPECT_GT(report.presample_node_visits, 0u);

    // Equal pin budget, different verdicts: degree ranking pins the
    // hub, frequency ranking never saw it.
    const graph::NodeList by_degree = degree->pinSet(data, 4);
    const graph::NodeList by_frequency = frequency->pinSet(data, 4);
    ASSERT_EQ(by_degree.size(), 4u);
    ASSERT_EQ(by_frequency.size(), 4u);
    EXPECT_NE(by_degree, by_frequency);
    EXPECT_NE(std::find(by_degree.begin(), by_degree.end(), 0),
              by_degree.end())
        << "degree policy must pin the hub";
    for (const graph::NodeId u : by_frequency)
        EXPECT_GE(u, 10) << "frequency policy pinned unsampled node "
                         << u;

    // Frequency ranking only pins nodes it actually observed, even
    // when the budget would allow more.
    EXPECT_LE(frequency->pinSet(data, 100).size(), 8u);

    // LRU-only never pins.
    LruOnlyPolicy lru;
    EXPECT_TRUE(lru.pinSet(data, 100).empty());
}

TEST(CachePolicy, KindNamesRoundTrip)
{
    for (const train::CachePolicyKind kind :
         {train::CachePolicyKind::LruOnly,
          train::CachePolicyKind::Degree,
          train::CachePolicyKind::PresampleFrequency})
        EXPECT_EQ(cachePolicyKindFromName(cachePolicyKindName(kind)),
                  kind);
    EXPECT_EQ(cachePolicyKindFromName("presample"),
              train::CachePolicyKind::PresampleFrequency);
    EXPECT_THROW(cachePolicyKindFromName("clock"),
                 buffalo::InvalidArgument);
}

// --- Stats snapshot consistency --------------------------------------

TEST(CachePolicy, StatsSnapshotsStayConsistentUnderConcurrency)
{
    const int dim = 16;
    FeatureCacheOptions options;
    options.capacity_bytes = 64 * dim * sizeof(float);
    options.feature_dim = dim;
    options.store_payload = true;
    FeatureCache cache(options);
    ASSERT_TRUE(cache.enabled());
    const std::uint64_t row_bytes = dim * sizeof(float);

    constexpr int kThreads = 4;
    constexpr std::uint64_t kLookupsPerThread = 5000;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&cache, t] {
            std::vector<float> row(dim, static_cast<float>(t));
            for (std::uint64_t i = 0; i < kLookupsPerThread; ++i) {
                const graph::NodeId node =
                    static_cast<graph::NodeId>((i * 17 + t) % 256);
                if (!cache.lookup(node, row))
                    cache.insert(node, row);
            }
        });

    // Reader: every snapshot must be internally consistent even while
    // the workers churn — a torn read would break these identities.
    for (int i = 0; i < 2000; ++i) {
        const FeatureCacheStats s = cache.stats();
        EXPECT_EQ(s.bytes_in_use, s.resident_nodes * row_bytes);
        EXPECT_EQ(s.insertions - s.evictions, s.resident_nodes);
        EXPECT_LE(s.hits + s.misses,
                  kThreads * kLookupsPerThread);
        EXPECT_STREQ(s.policy, "degree");
    }
    for (std::thread &w : workers)
        w.join();

    const FeatureCacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, kThreads * kLookupsPerThread);
}

// --- Serve-path parity ------------------------------------------------

serve::ServeOptions
parityServeOptions(const graph::Dataset &data)
{
    serve::ServeOptions options;
    options.model_kind = train::ModelKind::Sage;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.model.num_layers = 2;
    options.fanouts = {4, 6};
    options.max_batch = 8;
    options.deadline_ms = 60000.0;
    // Single-threaded prep and a strict submit-then-get discipline
    // give both servers the identical plan-id sequence, so per-plan
    // RNG streams match and any divergence must come from the cache.
    options.prep_threads = 1;
    options.workers = 1;
    options.seed = 5;
    return options;
}

TEST(ServeCache, CachedForwardMatchesUncachedBitwise)
{
    const graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Cora, 42, 0.25);

    serve::ServeOptions uncached_options = parityServeOptions(data);
    serve::ServeOptions cached_options = parityServeOptions(data);
    cached_options.feature_cache_bytes = util::mib(4);
    cached_options.cache_policy =
        train::CachePolicyKind::PresampleFrequency;
    cached_options.presample_batches = 4;

    serve::Server uncached(uncached_options, data);
    serve::Server cached(cached_options, data);
    ASSERT_EQ(uncached.featureCache(), nullptr);
    ASSERT_NE(cached.featureCache(), nullptr);

    for (std::size_t i = 0; i < 24; ++i) {
        const auto seed = static_cast<graph::NodeId>(
            (i * 13) % data.graph().numNodes());
        const serve::InferenceResponse a =
            uncached.submit(seed).get();
        const serve::InferenceResponse b = cached.submit(seed).get();
        ASSERT_EQ(a.status, serve::ResponseStatus::Ok);
        ASSERT_EQ(b.status, serve::ResponseStatus::Ok);
        EXPECT_EQ(a.predicted_class, b.predicted_class)
            << "diverged at request " << i;
        EXPECT_EQ(std::memcmp(&a.score, &b.score, sizeof(float)), 0)
            << "score not bitwise equal at request " << i;
    }
    uncached.shutdown();
    cached.shutdown();

    // The repeated seed cycle must actually exercise cache hits —
    // otherwise this parity test proves nothing.
    const FeatureCacheStats cs = cached.featureCache()->stats();
    EXPECT_GT(cs.hits, 0u);
    EXPECT_STREQ(cs.policy, "presample");
}

} // namespace
} // namespace buffalo::pipeline
