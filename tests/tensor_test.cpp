/**
 * @file
 * Tests for the tensor substrate: shapes, storage sharing, allocation
 * observation, and kernel correctness against hand computations.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/errors.h"
#include "util/rng.h"

namespace buffalo::tensor {
namespace {

/** Counts allocation traffic; refuses past a limit when set. */
class CountingObserver : public AllocationObserver
{
  public:
    void
    onAllocate(std::uint64_t bytes) override
    {
        if (limit > 0 && live + bytes > limit)
            throw Error("refused");
        live += bytes;
        allocated += bytes;
        peak = std::max(peak, live);
    }

    void
    onFree(std::uint64_t bytes) override
    {
        freed += bytes;
        live -= bytes;
    }

    std::uint64_t allocated = 0;
    std::uint64_t freed = 0;
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    std::uint64_t limit = 0;
};

TEST(Tensor, ZerosShapeAndContent)
{
    Tensor t = Tensor::zeros(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t.size(), 12u);
    EXPECT_EQ(t.bytes(), 48u);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, UninitializedHasShapeAndWritableStorage)
{
    Tensor t = Tensor::uninitialized(5, 7);
    EXPECT_EQ(t.rows(), 5u);
    EXPECT_EQ(t.cols(), 7u);
    EXPECT_EQ(t.size(), 35u);
    // Contents are unspecified until written; a full overwrite makes
    // the buffer indistinguishable from a zeros()-then-filled one.
    for (std::size_t i = 0; i < t.size(); ++i)
        t.data()[i] = static_cast<float>(i);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.data()[i], static_cast<float>(i));
    Tensor empty = Tensor::uninitialized(0, 3);
    EXPECT_EQ(empty.size(), 0u);
}

TEST(Tensor, UninitializedReportsAllocationLikeZeros)
{
    CountingObserver obs;
    {
        Tensor t = Tensor::uninitialized(8, 4, &obs);
        EXPECT_EQ(obs.allocated, 8u * 4u * sizeof(float));
        EXPECT_EQ(obs.live, t.bytes());
    }
    EXPECT_EQ(obs.live, 0u);
    EXPECT_EQ(obs.freed, 8u * 4u * sizeof(float));

    // The observer can still refuse the allocation.
    CountingObserver limited;
    limited.limit = 16;
    EXPECT_THROW(Tensor::uninitialized(8, 4, &limited), Error);
}

TEST(Tensor, CopiesShareStorageCloneDoesNot)
{
    Tensor a = Tensor::full(2, 2, 1.0f);
    Tensor b = a;
    EXPECT_TRUE(a.sharesStorageWith(b));
    b.at(0, 0) = 5.0f;
    EXPECT_EQ(a.at(0, 0), 5.0f);

    Tensor c = a.clone();
    EXPECT_FALSE(a.sharesStorageWith(c));
    c.at(0, 0) = 9.0f;
    EXPECT_EQ(a.at(0, 0), 5.0f);
}

TEST(Tensor, ObserverSeesLifetimes)
{
    CountingObserver obs;
    {
        Tensor a = Tensor::zeros(10, 10, &obs);
        EXPECT_EQ(obs.live, 400u);
        Tensor b = a; // shared storage: no new allocation
        EXPECT_EQ(obs.allocated, 400u);
    }
    EXPECT_EQ(obs.live, 0u);
    EXPECT_EQ(obs.freed, 400u);
}

TEST(Tensor, ObserverRefusalPreventsAllocation)
{
    CountingObserver obs;
    obs.limit = 100;
    EXPECT_THROW(Tensor::zeros(10, 10, &obs), Error);
    EXPECT_EQ(obs.live, 0u);
}

TEST(Tensor, FromValuesChecksArity)
{
    EXPECT_THROW(Tensor::fromValues(2, 2, {1.0f}), InvalidArgument);
    Tensor t = Tensor::fromValues(2, 2, {1, 2, 3, 4});
    EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Ops, MatmulMatchesHand)
{
    Tensor a = Tensor::fromValues(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor b = Tensor::fromValues(3, 2, {7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_EQ(c.at(0, 0), 58.0f);
    EXPECT_EQ(c.at(0, 1), 64.0f);
    EXPECT_EQ(c.at(1, 0), 139.0f);
    EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, TransposedMatmulsAgreeWithExplicit)
{
    util::Rng rng(1);
    Tensor a = Tensor::zeros(4, 3);
    Tensor b = Tensor::zeros(4, 5);
    fillUniform(a, 1.0f, rng);
    fillUniform(b, 1.0f, rng);

    // a^T b via explicit transpose.
    Tensor at = Tensor::zeros(3, 4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            at.at(j, i) = a.at(i, j);
    EXPECT_LT(maxAbsDiff(matmulTransposeA(a, b), matmul(at, b)), 1e-5);

    Tensor c = Tensor::zeros(5, 3);
    fillUniform(c, 1.0f, rng);
    Tensor ct = Tensor::zeros(3, 5);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            ct.at(j, i) = c.at(i, j);
    EXPECT_LT(maxAbsDiff(matmulTransposeB(a.clone(), c), matmul(a, ct)),
              1e-5);
}

TEST(Ops, MatmulRejectsShapeMismatch)
{
    Tensor a = Tensor::zeros(2, 3);
    Tensor b = Tensor::zeros(2, 3);
    EXPECT_THROW(matmul(a, b), InvalidArgument);
}

TEST(Ops, ElementwiseAndScale)
{
    Tensor a = Tensor::fromValues(1, 3, {1, 2, 3});
    Tensor b = Tensor::fromValues(1, 3, {4, 5, 6});
    EXPECT_EQ(add(a, b).at(0, 2), 9.0f);
    EXPECT_EQ(subtract(b, a).at(0, 0), 3.0f);
    EXPECT_EQ(multiply(a, b).at(0, 1), 10.0f);
    EXPECT_EQ(scale(a, 2.0f).at(0, 2), 6.0f);
    addInPlace(a, b);
    EXPECT_EQ(a.at(0, 0), 5.0f);
    scaleInPlace(a, 0.0f);
    EXPECT_EQ(sum(a), 0.0);
}

TEST(Ops, ReluForwardBackward)
{
    Tensor x = Tensor::fromValues(1, 4, {-1, 0, 2, -3});
    Tensor y = relu(x);
    EXPECT_EQ(y.at(0, 0), 0.0f);
    EXPECT_EQ(y.at(0, 2), 2.0f);
    Tensor grad = Tensor::full(1, 4, 1.0f);
    Tensor gx = reluBackward(grad, x);
    EXPECT_EQ(gx.at(0, 0), 0.0f);
    EXPECT_EQ(gx.at(0, 2), 1.0f);
}

TEST(Ops, SigmoidTanhRanges)
{
    Tensor x = Tensor::fromValues(1, 3, {-10, 0, 10});
    Tensor s = sigmoid(x);
    EXPECT_NEAR(s.at(0, 0), 0.0f, 1e-4);
    EXPECT_NEAR(s.at(0, 1), 0.5f, 1e-6);
    EXPECT_NEAR(s.at(0, 2), 1.0f, 1e-4);
    Tensor t = tanh(x);
    EXPECT_NEAR(t.at(0, 0), -1.0f, 1e-4);
    EXPECT_NEAR(t.at(0, 1), 0.0f, 1e-6);
}

TEST(Ops, ConcatAndSliceRoundTrip)
{
    Tensor a = Tensor::fromValues(2, 2, {1, 2, 3, 4});
    Tensor b = Tensor::fromValues(2, 1, {5, 6});
    Tensor c = concatColumns(a, b);
    ASSERT_EQ(c.cols(), 3u);
    EXPECT_EQ(c.at(0, 2), 5.0f);
    EXPECT_EQ(c.at(1, 2), 6.0f);
    Tensor back = sliceColumns(c, 0, 2);
    EXPECT_LT(maxAbsDiff(back, a), 1e-9);
}

TEST(Ops, GatherScatterRoundTrip)
{
    Tensor a = Tensor::fromValues(3, 2, {1, 2, 3, 4, 5, 6});
    Tensor g = gatherRows(a, {2, 0});
    EXPECT_EQ(g.at(0, 0), 5.0f);
    EXPECT_EQ(g.at(1, 1), 2.0f);

    Tensor out = Tensor::zeros(3, 2);
    scatterAddRows(out, g, {2, 0});
    EXPECT_LT(maxAbsDiff(
                  out, Tensor::fromValues(3, 2, {1, 2, 0, 0, 5, 6})),
              1e-9);
}

TEST(Ops, GatherRejectsOutOfRange)
{
    Tensor a = Tensor::zeros(2, 2);
    EXPECT_THROW(gatherRows(a, {5}), InvalidArgument);
}

TEST(Ops, RowBroadcastAndColumnSum)
{
    Tensor a = Tensor::fromValues(2, 2, {1, 2, 3, 4});
    Tensor bias = Tensor::fromValues(1, 2, {10, 20});
    Tensor c = addRowBroadcast(a, bias);
    EXPECT_EQ(c.at(1, 1), 24.0f);
    Tensor s = columnSum(a);
    EXPECT_EQ(s.at(0, 0), 4.0f);
    EXPECT_EQ(s.at(0, 1), 6.0f);
}

TEST(Ops, XavierInitBounded)
{
    util::Rng rng(2);
    Tensor w = Tensor::zeros(64, 64);
    fillXavier(w, rng);
    const float bound = std::sqrt(6.0f / 128.0f);
    double sum_abs = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
        ASSERT_LE(std::abs(w.data()[i]), bound + 1e-6);
        sum_abs += std::abs(w.data()[i]);
    }
    EXPECT_GT(sum_abs, 0.0);
}

TEST(Ops, Norms)
{
    Tensor a = Tensor::fromValues(1, 2, {3, 4});
    EXPECT_DOUBLE_EQ(frobeniusNorm(a), 5.0);
    Tensor b = Tensor::fromValues(1, 2, {3, 5});
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 1.0);
}

} // namespace
} // namespace buffalo::tensor
