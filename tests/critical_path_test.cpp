/**
 * @file
 * Tests for the critical-path analyzer (DESIGN.md, "Critical-path
 * attribution"): synthetic span chains with hand-computed critical
 * paths, the what-if pipeline recurrence, and the trace/run-log
 * ingestion used by tools/buffalo_profile.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/json.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace buffalo::obs {
namespace {

CpSpan
span(const char *stage, std::uint64_t item, double start_us,
     double end_us)
{
    CpSpan s;
    s.stage = stage;
    s.item = item;
    s.start_us = start_us;
    s.end_us = end_us;
    return s;
}

const CpStageReport &
stageReport(const CriticalPathReport &report, const std::string &name)
{
    for (const CpStageReport &sr : report.stages)
        if (sr.stage == name)
            return sr;
    throw std::runtime_error("missing stage " + name);
}

// ---------------------------------------------------------------------
// analyzeCriticalPath on hand-built chains

TEST(CriticalPath, EmptyAndUnattributedInputsYieldEmptyReport)
{
    EXPECT_EQ(analyzeCriticalPath({}).items, 0u);
    // item == 0 means "not attributed to any chain" — ignored.
    const CriticalPathReport report =
        analyzeCriticalPath({span("a", 0, 0.0, 10.0)});
    EXPECT_EQ(report.items, 0u);
    EXPECT_EQ(report.spans, 0u);
    EXPECT_EQ(report.wall_us, 0.0);
}

TEST(CriticalPath, SerialChainSelfTimesEqualBusyTimes)
{
    // One item through three stages back to back: every span is on
    // the critical path for exactly its own duration, no idle.
    const CriticalPathReport report = analyzeCriticalPath(
        {span("a", 1, 0.0, 10.0), span("b", 1, 10.0, 30.0),
         span("c", 1, 30.0, 60.0)});
    EXPECT_EQ(report.items, 1u);
    EXPECT_EQ(report.spans, 3u);
    EXPECT_EQ(report.incomplete_items, 0u);
    EXPECT_DOUBLE_EQ(report.wall_us, 60.0);
    EXPECT_DOUBLE_EQ(report.serial_us, 60.0);
    EXPECT_DOUBLE_EQ(report.idle_us, 0.0);
    EXPECT_DOUBLE_EQ(report.overlap_efficiency, 1.0);
    EXPECT_DOUBLE_EQ(stageReport(report, "a").cp_self_us, 10.0);
    EXPECT_DOUBLE_EQ(stageReport(report, "b").cp_self_us, 20.0);
    EXPECT_DOUBLE_EQ(stageReport(report, "c").cp_self_us, 30.0);
    EXPECT_EQ(report.dominant_stage, "c");
    EXPECT_DOUBLE_EQ(report.dominant_share, 0.5);
    // Self times are also each stage's busy time here.
    for (const CpStageReport &sr : report.stages)
        EXPECT_DOUBLE_EQ(sr.cp_self_us, sr.busy_us);
}

TEST(CriticalPath, PerfectlyOverlappedPipelineChargesDownstream)
{
    // Stage a produces item i over [i, i+1]; stage b consumes it over
    // [i+1, i+2]. The critical path is a's first span plus every b
    // span: self(a) = 1, self(b) = n, wall = n + 1, idle = 0.
    constexpr int kItems = 4;
    std::vector<CpSpan> spans;
    for (int i = 0; i < kItems; ++i) {
        const double t = static_cast<double>(i);
        spans.push_back(span("a", i + 1, t, t + 1.0));
        spans.push_back(span("b", i + 1, t + 1.0, t + 2.0));
    }
    CpOptions options;
    options.stage_order = {"a", "b"};
    const CriticalPathReport report =
        analyzeCriticalPath(spans, options);
    EXPECT_EQ(report.items, static_cast<std::size_t>(kItems));
    EXPECT_DOUBLE_EQ(report.wall_us, kItems + 1.0);
    EXPECT_DOUBLE_EQ(report.serial_us, 2.0 * kItems);
    EXPECT_DOUBLE_EQ(report.idle_us, 0.0);
    ASSERT_EQ(report.stages.size(), 2u);
    EXPECT_EQ(report.stages[0].stage, "a");
    EXPECT_DOUBLE_EQ(report.stages[0].cp_self_us, 1.0);
    EXPECT_DOUBLE_EQ(report.stages[1].cp_self_us,
                     static_cast<double>(kItems));
    EXPECT_EQ(report.dominant_stage, "b");
    EXPECT_DOUBLE_EQ(report.dominant_share,
                     kItems / (kItems + 1.0));
    EXPECT_DOUBLE_EQ(report.overlap_efficiency, 1.0);
    EXPECT_DOUBLE_EQ(report.avg_concurrency,
                     2.0 * kItems / (kItems + 1.0));
    // With every stage fully busy the perfect-overlap bound equals
    // the measured wall: no headroom, speedup exactly 1.
    ASSERT_FALSE(report.whatifs.empty());
    EXPECT_EQ(report.whatifs[0].name, "perfect_overlap");
    EXPECT_DOUBLE_EQ(report.whatifs[0].wall_us, kItems + 1.0);
    EXPECT_DOUBLE_EQ(report.whatifs[0].speedup, 1.0);
}

TEST(CriticalPath, InferredStageOrderMatchesChainPositions)
{
    // No configured order: "a" always precedes "b" within each item's
    // chain, so the inferred pipeline order is [a, b].
    std::vector<CpSpan> spans;
    for (int i = 0; i < 3; ++i) {
        const double t = static_cast<double>(i);
        spans.push_back(span("b", i + 1, t + 1.0, t + 2.0));
        spans.push_back(span("a", i + 1, t, t + 1.0));
    }
    const CriticalPathReport report = analyzeCriticalPath(spans);
    ASSERT_EQ(report.stages.size(), 2u);
    EXPECT_EQ(report.stages[0].stage, "a");
    EXPECT_EQ(report.stages[1].stage, "b");
}

TEST(CriticalPath, MissingStageMarksItemIncomplete)
{
    // Item 2 lost its "b" span (ring overwrite): it cannot form a
    // full chain, and the report says so instead of silently
    // under-attributing.
    const CriticalPathReport report = analyzeCriticalPath(
        {span("a", 1, 0.0, 1.0), span("b", 1, 1.0, 2.0),
         span("a", 2, 1.0, 2.0)});
    EXPECT_EQ(report.items, 2u);
    EXPECT_EQ(report.incomplete_items, 1u);
}

TEST(CriticalPath, SelfTimesPlusIdleAlwaysSumToWall)
{
    // A staggered, gappy schedule: exact decomposition is fiddly by
    // hand, but the invariant sum(self) + idle == wall must hold.
    const CriticalPathReport report = analyzeCriticalPath(
        {span("a", 1, 0.0, 4.0), span("b", 1, 9.0, 12.0),
         span("a", 2, 5.0, 7.0), span("b", 2, 12.0, 20.0),
         span("a", 3, 7.0, 8.0), span("b", 3, 25.0, 30.0)});
    double self_sum = 0.0;
    for (const CpStageReport &sr : report.stages)
        self_sum += sr.cp_self_us;
    EXPECT_NEAR(self_sum + report.idle_us, report.wall_us, 1e-9);
    EXPECT_GT(report.idle_us, 0.0); // the gaps are visible
    EXPECT_LT(report.overlap_efficiency, 1.0);
}

// ---------------------------------------------------------------------
// What-if bounds

TEST(CriticalPath, WhatIfRecurrenceMatchesHandComputation)
{
    // Three items through [a, b, c] with durations [1, 5, 1] each;
    // stage b dominates. Pipeline recurrence by hand:
    //   item 1: a=1, b=6,  c=7
    //   item 2: a=2, b=11, c=12
    //   item 3: a=3, b=16, c=17    -> wall 17 s
    // blockgen_2x (b scaled 0.5): b durations 2.5:
    //   item 1: a=1, b=3.5, c=4.5
    //   item 2: a=2, b=6,   c=7
    //   item 3: a=3, b=8.5, c=9.5  -> wall 9.5 s
    CpOptions options;
    options.build_stage = "b";
    const CriticalPathReport report = analyzeModeledPipeline(
        {"a", "b", "c"},
        {{1.0, 5.0, 1.0}, {1.0, 5.0, 1.0}, {1.0, 5.0, 1.0}},
        options);
    EXPECT_DOUBLE_EQ(report.wall_us, 17e6);
    EXPECT_DOUBLE_EQ(stageReport(report, "a").cp_self_us, 1e6);
    EXPECT_DOUBLE_EQ(stageReport(report, "b").cp_self_us, 15e6);
    EXPECT_DOUBLE_EQ(stageReport(report, "c").cp_self_us, 1e6);
    EXPECT_EQ(report.dominant_stage, "b");
    EXPECT_NEAR(report.dominant_share, 15.0 / 17.0, 1e-12);
    EXPECT_DOUBLE_EQ(report.idle_us, 0.0);

    ASSERT_EQ(report.whatifs.size(), 3u);
    EXPECT_EQ(report.whatifs[0].name, "perfect_overlap");
    EXPECT_DOUBLE_EQ(report.whatifs[0].wall_us, 17e6);
    EXPECT_EQ(report.whatifs[1].name, "blockgen_2x");
    EXPECT_DOUBLE_EQ(report.whatifs[1].wall_us, 9.5e6);
    EXPECT_NEAR(report.whatifs[1].speedup, 17.0 / 9.5, 1e-12);
    EXPECT_EQ(report.whatifs[2].name, "blockgen_4x");
}

TEST(CriticalPath, ZeroCacheMissBoundScalesFeatureStage)
{
    // One item, feature stage f of 10 us at hit rate 0.5 and
    // kappa 0.25: scale = 0.25 / (0.5 + 0.5 * 0.25) = 0.4, so the
    // modeled wall is 10 + 10 * 0.4 = 14 us.
    CpOptions options;
    options.stage_order = {"a", "f"};
    options.feature_stage = "f";
    options.cache_hit_rate = 0.5;
    const CriticalPathReport report = analyzeCriticalPath(
        {span("a", 1, 0.0, 10.0), span("f", 1, 10.0, 20.0)},
        options);
    ASSERT_EQ(report.whatifs.size(), 2u);
    EXPECT_EQ(report.whatifs[1].name, "zero_cache_miss");
    EXPECT_NEAR(report.whatifs[1].wall_us, 14.0, 1e-9);
    EXPECT_NEAR(report.whatifs[1].speedup, 20.0 / 14.0, 1e-12);

    // Unknown hit rate (< 0): the bound is skipped, not fabricated.
    options.cache_hit_rate = -1.0;
    const CriticalPathReport no_cache = analyzeCriticalPath(
        {span("a", 1, 0.0, 10.0), span("f", 1, 10.0, 20.0)},
        options);
    ASSERT_EQ(no_cache.whatifs.size(), 1u);
    EXPECT_EQ(no_cache.whatifs[0].name, "perfect_overlap");
}

TEST(CriticalPath, ZeroCacheMissScaleEndpoints)
{
    EXPECT_DOUBLE_EQ(zeroCacheMissScale(0.0), 0.25);
    EXPECT_DOUBLE_EQ(zeroCacheMissScale(1.0), 1.0);
    EXPECT_NEAR(zeroCacheMissScale(0.5), 0.4, 1e-12);
    // Out-of-range rates clamp instead of producing nonsense scales.
    EXPECT_DOUBLE_EQ(zeroCacheMissScale(1.5), 1.0);
    EXPECT_DOUBLE_EQ(zeroCacheMissScale(-0.5), 0.25);
    EXPECT_DOUBLE_EQ(zeroCacheMissScale(0.0, 0.1), 0.1);
}

TEST(CriticalPath, OverlapEfficiencyCappedAndGuarded)
{
    EXPECT_DOUBLE_EQ(overlapEfficiency(2.0, 4.0), 0.5);
    EXPECT_DOUBLE_EQ(overlapEfficiency(8.0, 4.0), 1.0);
    EXPECT_DOUBLE_EQ(overlapEfficiency(0.0, 4.0), 0.0);
    EXPECT_DOUBLE_EQ(overlapEfficiency(4.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(overlapEfficiency(-1.0, 4.0), 0.0);
}

// ---------------------------------------------------------------------
// Trace / run-log ingestion (the buffalo_profile input path)

TEST(CriticalPath, TraceRoundTripThroughTracerJson)
{
    // Record an item-attributed pipeline with a private tracer,
    // export the Chrome JSON, reload it, and re-derive the critical
    // path: what buffalo_profile does offline.
    Tracer tracer;
    tracer.enable();
    for (int i = 0; i < 3; ++i) {
        const double t = 10.0 * i;
        tracer.record(names::kSpanPipelineSample, t, 10.0,
                      static_cast<std::uint64_t>(i) + 1);
        tracer.record(names::kSpanTrainIteration, t + 10.0, 10.0,
                      static_cast<std::uint64_t>(i) + 1);
    }
    tracer.record("untracked", 0.0, 5.0); // no item -> skipped
    tracer.disable();

    const std::string path =
        ::testing::TempDir() + "/buffalo_cp_roundtrip_trace.json";
    tracer.writeJson(path);
    const std::vector<CpSpan> spans = loadTraceSpans(path);
    std::remove(path.c_str());
    ASSERT_EQ(spans.size(), 6u); // the unattributed span is gone

    CpOptions options;
    options.stage_order = {names::kSpanPipelineSample,
                           names::kSpanTrainIteration};
    const CriticalPathReport report =
        analyzeCriticalPath(spans, options);
    EXPECT_EQ(report.items, 3u);
    EXPECT_EQ(report.incomplete_items, 0u);
    EXPECT_DOUBLE_EQ(report.wall_us, 40.0);
    EXPECT_DOUBLE_EQ(
        stageReport(report, names::kSpanPipelineSample).cp_self_us,
        10.0);
    EXPECT_DOUBLE_EQ(
        stageReport(report, names::kSpanTrainIteration).cp_self_us,
        30.0);
    EXPECT_EQ(report.dominant_stage, names::kSpanTrainIteration);
}

TEST(CriticalPath, CacheHitRateComesFromLastSnapshot)
{
    const std::string path =
        ::testing::TempDir() + "/buffalo_cp_runlog.jsonl";
    std::string log;
    log += "not json at all\n";
    log += "{\"ev\":\"run.begin\",\"tool\":\"test\"}\n";
    log += "{\"ev\":\"" + std::string(names::kEvCacheSnapshot) +
           "\",\"hit_rate\":0.25}\n";
    log += "{\"ev\":\"" + std::string(names::kEvCacheSnapshot) +
           "\",\"hit_rate\":0.75}\n";
    writeFileText(path, log);
    EXPECT_DOUBLE_EQ(cacheHitRateFromRunLog(path), 0.75);

    // A log without any snapshot reports "unknown", not 0.
    writeFileText(path, "{\"ev\":\"run.begin\"}\n");
    EXPECT_DOUBLE_EQ(cacheHitRateFromRunLog(path), -1.0);
    std::remove(path.c_str());
}

} // namespace
} // namespace buffalo::obs
