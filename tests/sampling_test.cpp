/**
 * @file
 * Tests for the sampling substrate: neighbor sampler invariants, block
 * chain validity, and fast-vs-baseline block generator equivalence.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "graph/generators.h"
#include "sampling/block_generator.h"
#include "sampling/sampled_subgraph.h"
#include "util/errors.h"

namespace buffalo::sampling {
namespace {

CsrGraph
testGraph(std::uint64_t seed = 1, NodeId nodes = 600)
{
    util::Rng rng(seed);
    return graph::generateBarabasiAlbert(nodes, 4, rng);
}

NodeList
firstSeeds(NodeId count)
{
    NodeList seeds(count);
    for (NodeId i = 0; i < count; ++i)
        seeds[i] = i * 3; // spread out
    return seeds;
}

TEST(NeighborSampler, SeedsGetPrefixLocalIds)
{
    CsrGraph g = testGraph();
    util::Rng rng(2);
    NeighborSampler sampler({5, 5});
    NodeList seeds = firstSeeds(20);
    SampledSubgraph sg = sampler.sample(g, seeds, rng);

    EXPECT_EQ(sg.numSeeds(), 20u);
    for (NodeId i = 0; i < 20; ++i) {
        EXPECT_EQ(sg.globalId(i), seeds[i]);
        EXPECT_EQ(sg.localId(seeds[i]), i);
    }
}

TEST(NeighborSampler, FanoutCapsDegrees)
{
    CsrGraph g = testGraph();
    util::Rng rng(3);
    NeighborSampler sampler({3, 7});
    SampledSubgraph sg = sampler.sample(g, firstSeeds(30), rng);

    ASSERT_EQ(sg.numLayers(), 2);
    const CsrGraph &top = sg.layerAdjacency(1);
    const CsrGraph &bottom = sg.layerAdjacency(0);
    for (NodeId u = 0; u < top.numNodes(); ++u) {
        EXPECT_LE(top.degree(u), 7u);
        EXPECT_LE(bottom.degree(u), 3u);
    }
}

TEST(NeighborSampler, SampledNeighborsAreRealNeighbors)
{
    CsrGraph g = testGraph();
    util::Rng rng(4);
    NeighborSampler sampler({4, 4});
    SampledSubgraph sg = sampler.sample(g, firstSeeds(15), rng);

    for (int layer = 0; layer < sg.numLayers(); ++layer) {
        const CsrGraph &adj = sg.layerAdjacency(layer);
        for (NodeId u = 0; u < adj.numNodes(); ++u) {
            for (NodeId v_local : adj.neighbors(u)) {
                EXPECT_TRUE(g.hasEdge(sg.globalId(u),
                                      sg.globalId(v_local)));
            }
        }
    }
}

TEST(NeighborSampler, NoSamplingWhenDegreeBelowFanout)
{
    CsrGraph g = testGraph();
    util::Rng rng(5);
    NeighborSampler sampler({1000, 1000});
    SampledSubgraph sg = sampler.sample(g, firstSeeds(5), rng);
    // With fanout over the max degree, every neighbor is kept.
    const CsrGraph &top = sg.layerAdjacency(1);
    for (NodeId i = 0; i < sg.numSeeds(); ++i)
        EXPECT_EQ(top.degree(i), g.degree(sg.globalId(i)));
}

TEST(NeighborSampler, RejectsDuplicateSeeds)
{
    CsrGraph g = testGraph();
    util::Rng rng(6);
    NeighborSampler sampler({3});
    EXPECT_THROW(sampler.sample(g, {1, 1}, rng), InvalidArgument);
}

TEST(NeighborSampler, RejectsBadFanouts)
{
    EXPECT_THROW(NeighborSampler({}), InvalidArgument);
    EXPECT_THROW(NeighborSampler({0}), InvalidArgument);
}

TEST(NeighborSampler, LocalIdThrowsForAbsentNode)
{
    CsrGraph g = testGraph();
    util::Rng rng(7);
    NeighborSampler sampler({2});
    SampledSubgraph sg = sampler.sample(g, {0}, rng);
    EXPECT_THROW(sg.localId(599), NotFound);
}

/** Shared fixture: one sampled batch + both generators. */
class BlockGeneration : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        graph_ = testGraph(11, 800);
        util::Rng rng(12);
        NeighborSampler sampler({4, 8});
        sg_ = std::make_unique<SampledSubgraph>(
            sampler.sample(graph_, firstSeeds(40), rng));
    }

    CsrGraph graph_;
    std::unique_ptr<SampledSubgraph> sg_;
};

TEST_F(BlockGeneration, FastChainIsValid)
{
    FastBlockGenerator fast;
    NodeList outputs = {0, 1, 2, 3, 4};
    MicroBatch mb = fast.generate(*sg_, outputs);
    ASSERT_EQ(mb.numLayers(), 2);
    mb.validateChain();
    // Output nodes are the requested seeds (as global ids).
    NodeList expected;
    for (NodeId local : outputs)
        expected.push_back(sg_->globalId(local));
    EXPECT_EQ(mb.outputNodes(), expected);
}

TEST_F(BlockGeneration, FastAndBaselineAgree)
{
    FastBlockGenerator fast;
    BaselineBlockGenerator baseline;
    NodeList outputs = {0, 5, 10, 15, 20, 25};
    MicroBatch a = fast.generate(*sg_, outputs);
    MicroBatch b = baseline.generate(*sg_, outputs);
    b.validateChain();

    ASSERT_EQ(a.numLayers(), b.numLayers());
    for (int layer = 0; layer < a.numLayers(); ++layer) {
        const Block &fa = a.blocks[layer];
        const Block &fb = b.blocks[layer];
        ASSERT_EQ(fa.numDst(), fb.numDst());
        EXPECT_EQ(fa.numEdges(), fb.numEdges());
        // The generators may order appended sources differently, so
        // align destinations by *global id*: each destination must see
        // the same neighbor set under both strategies.
        auto rows_by_global = [](const Block &block) {
            std::map<NodeId, std::multiset<NodeId>> rows;
            for (NodeId dst = 0; dst < block.numDst(); ++dst) {
                auto &row = rows[block.dstGlobal(dst)];
                for (NodeId local : block.neighborList(dst))
                    row.insert(block.src_nodes[local]);
            }
            return rows;
        };
        EXPECT_EQ(rows_by_global(fa), rows_by_global(fb))
            << "layer " << layer;
        // Same input node sets.
        std::set<NodeId> ia(fa.src_nodes.begin(), fa.src_nodes.end());
        std::set<NodeId> ib(fb.src_nodes.begin(), fb.src_nodes.end());
        EXPECT_EQ(ia, ib);
    }
}

TEST_F(BlockGeneration, SubsetBlocksAreSmaller)
{
    FastBlockGenerator fast;
    NodeList all(sg_->numSeeds());
    for (NodeId i = 0; i < sg_->numSeeds(); ++i)
        all[i] = i;
    MicroBatch whole = fast.generate(*sg_, all);
    MicroBatch half =
        fast.generate(*sg_, NodeList(all.begin(),
                                     all.begin() + all.size() / 2));
    EXPECT_LT(half.inputNodes().size(), whole.inputNodes().size());
    EXPECT_LT(half.structureBytes(), whole.structureBytes());
}

TEST_F(BlockGeneration, RejectsNonSeedOutputs)
{
    FastBlockGenerator fast;
    EXPECT_THROW(fast.generate(*sg_, {sg_->numSeeds()}),
                 InvalidArgument);
}

TEST_F(BlockGeneration, PhaseTimerReceivesBothPhases)
{
    FastBlockGenerator fast;
    util::PhaseTimer timer;
    fast.generate(*sg_, {0, 1, 2}, &timer);
    EXPECT_GE(timer.get(phaseName(Phase::ConnectionCheck)), 0.0);
    EXPECT_GE(timer.get(phaseName(Phase::BlockConstruction)), 0.0);
    EXPECT_EQ(timer.phases().size(), 2u);
}

TEST_F(BlockGeneration, ParallelPoolMatchesSerial)
{
    // A multi-worker pool must produce exactly the serial result.
    // (This batch sits below the default fan-out threshold, so only
    // the degree fill parallelizes; the chunked-construction case is
    // ParallelConstructionIsByteIdenticalAtAnyGrain below.)
    util::ThreadPool pool(4);
    FastBlockGenerator parallel_gen(&pool);
    FastBlockGenerator serial_gen;
    NodeList all(sg_->numSeeds());
    for (NodeId i = 0; i < sg_->numSeeds(); ++i)
        all[i] = i;
    MicroBatch a = parallel_gen.generate(*sg_, all);
    MicroBatch b = serial_gen.generate(*sg_, all);
    ASSERT_EQ(a.numLayers(), b.numLayers());
    for (int layer = 0; layer < a.numLayers(); ++layer) {
        EXPECT_EQ(a.blocks[layer].src_nodes,
                  b.blocks[layer].src_nodes);
        EXPECT_EQ(a.blocks[layer].offsets, b.blocks[layer].offsets);
        EXPECT_EQ(a.blocks[layer].neighbors,
                  b.blocks[layer].neighbors);
    }
}

TEST_F(BlockGeneration, ParallelConstructionIsByteIdenticalAtAnyGrain)
{
    // The three-phase parallel construction must reproduce the serial
    // first-seen source order byte for byte, whatever the chunking.
    // Tiny grain settings force the parallel path (and many chunks)
    // even on this small batch, so the stitch is exercised for real:
    // chunk boundaries cut through CSR rows' source sets, and the
    // same source appears as a candidate in several chunks.
    FastBlockGenerator serial_gen;
    NodeList all(sg_->numSeeds());
    for (NodeId i = 0; i < sg_->numSeeds(); ++i)
        all[i] = i;
    const MicroBatch want = serial_gen.generate(*sg_, all);

    for (const std::size_t workers : {2u, 4u, 7u}) {
        util::ThreadPool pool(workers);
        for (const std::size_t min_chunk : {1u, 3u, 16u, 64u}) {
            FastBlockGenerator::Grain grain;
            grain.parallel_dst_threshold = 1;
            grain.min_chunk = min_chunk;
            grain.degree_grain = 1;
            FastBlockGenerator parallel_gen(&pool, grain);
            const MicroBatch got = parallel_gen.generate(*sg_, all);
            ASSERT_EQ(got.numLayers(), want.numLayers());
            for (int layer = 0; layer < want.numLayers(); ++layer) {
                const Block &w = want.blocks[layer];
                const Block &g = got.blocks[layer];
                EXPECT_EQ(g.num_dst, w.num_dst)
                    << "workers=" << workers
                    << " min_chunk=" << min_chunk;
                EXPECT_EQ(g.src_nodes, w.src_nodes)
                    << "workers=" << workers
                    << " min_chunk=" << min_chunk;
                EXPECT_EQ(g.offsets, w.offsets)
                    << "workers=" << workers
                    << " min_chunk=" << min_chunk;
                EXPECT_EQ(g.neighbors, w.neighbors)
                    << "workers=" << workers
                    << " min_chunk=" << min_chunk;
            }
            got.validateChain();
        }
    }
}

TEST_F(BlockGeneration, RejectsDegenerateGrain)
{
    FastBlockGenerator::Grain grain;
    grain.min_chunk = 0;
    EXPECT_THROW(FastBlockGenerator(nullptr, grain),
                 InvalidArgument);
}

TEST_F(BlockGeneration, DstPrefixInvariant)
{
    FastBlockGenerator fast;
    MicroBatch mb = fast.generate(*sg_, {3, 7, 9});
    for (const Block &block : mb.blocks) {
        // Destinations must be the prefix of sources.
        for (NodeId dst = 0; dst < block.numDst(); ++dst)
            EXPECT_EQ(block.dstGlobal(dst), block.src_nodes[dst]);
    }
}

TEST(Block, ValidateCatchesCorruption)
{
    Block block;
    block.src_nodes = {10, 20};
    block.num_dst = 1;
    block.offsets = {0, 1};
    block.neighbors = {5}; // out of range (only 2 srcs)
    EXPECT_THROW(block.validate(), InternalError);
    block.neighbors = {1};
    EXPECT_NO_THROW(block.validate());
}

TEST(MicroBatch, ValidateChainCatchesMismatch)
{
    Block bottom;
    bottom.src_nodes = {1, 2, 3};
    bottom.num_dst = 2;
    bottom.offsets = {0, 1, 1};
    bottom.neighbors = {2};

    Block top;
    top.src_nodes = {1, 9}; // 9 != 2: chain broken
    top.num_dst = 1;
    top.offsets = {0, 1};
    top.neighbors = {1};

    MicroBatch mb;
    mb.blocks = {bottom, top};
    EXPECT_THROW(mb.validateChain(), InternalError);
}

} // namespace
} // namespace buffalo::sampling
