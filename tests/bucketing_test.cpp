/**
 * @file
 * Tests for degree bucketing and bucket-explosion detection — the
 * phenomenon at the heart of the paper (§II-C, §III).
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"
#include "sampling/block_generator.h"
#include "sampling/bucketing.h"
#include "util/rng.h"

namespace buffalo::sampling {
namespace {

TEST(Bucketize, GroupsByExactDegree)
{
    // Hand-built block: degrees 0, 1, 1, 3.
    Block block;
    block.src_nodes = {10, 11, 12, 13, 20, 21, 22};
    block.num_dst = 4;
    block.offsets = {0, 0, 1, 2, 5};
    block.neighbors = {4, 5, 4, 5, 6};
    block.validate();

    BucketList buckets = bucketizeBlock(block);
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0].degree, 0u);
    EXPECT_EQ(buckets[0].members, NodeList{0});
    EXPECT_EQ(buckets[1].degree, 1u);
    EXPECT_EQ(buckets[1].members, (NodeList{1, 2}));
    EXPECT_EQ(buckets[2].degree, 3u);
    EXPECT_EQ(buckets[2].members, NodeList{3});
}

TEST(Bucketize, BucketsCoverAllDestinations)
{
    util::Rng rng(1);
    auto g = graph::generateBarabasiAlbert(500, 5, rng);
    NeighborSampler sampler({6, 12});
    NodeList seeds;
    for (NodeId i = 0; i < 60; ++i)
        seeds.push_back(i * 2);
    SampledSubgraph sg = sampler.sample(g, seeds, rng);

    BucketList buckets = bucketizeSeeds(sg);
    std::size_t covered = 0;
    std::vector<char> seen(sg.numSeeds(), 0);
    for (const auto &bucket : buckets) {
        for (NodeId member : bucket.members) {
            ASSERT_LT(member, sg.numSeeds());
            ASSERT_FALSE(seen[member]) << "seed in two buckets";
            seen[member] = 1;
            ++covered;
        }
        // Every member really has the bucket's degree.
        const auto &top = sg.layerAdjacency(sg.numLayers() - 1);
        for (NodeId member : bucket.members)
            EXPECT_EQ(top.degree(member), bucket.degree);
    }
    EXPECT_EQ(covered, sg.numSeeds());
}

TEST(Bucketize, SortedByDegree)
{
    util::Rng rng(2);
    auto g = graph::generateBarabasiAlbert(400, 4, rng);
    NeighborSampler sampler({8});
    NodeList seeds(50);
    std::iota(seeds.begin(), seeds.end(), 0);
    SampledSubgraph sg = sampler.sample(g, seeds, rng);
    BucketList buckets = bucketizeSeeds(sg);
    for (std::size_t i = 1; i < buckets.size(); ++i)
        EXPECT_LT(buckets[i - 1].degree, buckets[i].degree);
}

TEST(ExplosionDetection, PowerLawGraphExplodesAtCutoff)
{
    // On a power-law graph with fanout F, every node of degree >= F
    // lands in the degree-F bucket -> explosion (paper Fig. 4b).
    util::Rng rng(3);
    auto g = graph::generateBarabasiAlbert(3000, 8, rng);
    const int fanout = 10;
    NeighborSampler sampler({fanout});
    NodeList seeds(800);
    std::iota(seeds.begin(), seeds.end(), 0);
    SampledSubgraph sg = sampler.sample(g, seeds, rng);

    BucketList buckets = bucketizeSeeds(sg);
    const int explosion = findExplosionBucket(buckets);
    ASSERT_GE(explosion, 0);
    EXPECT_EQ(buckets[explosion].degree,
              static_cast<EdgeIndex>(fanout));
    // The explosion bucket dominates.
    EXPECT_GT(buckets[explosion].volume(),
              sg.numSeeds() / 3);
}

TEST(ExplosionDetection, UniformGraphDoesNotExplode)
{
    // A ring lattice has a single degree -> one bucket, no explosion.
    util::Rng rng(4);
    auto g = graph::generateWattsStrogatz(500, 2, 0.0, rng);
    NeighborSampler sampler({10});
    NodeList seeds(100);
    std::iota(seeds.begin(), seeds.end(), 0);
    SampledSubgraph sg = sampler.sample(g, seeds, rng);
    BucketList buckets = bucketizeSeeds(sg);
    EXPECT_EQ(findExplosionBucket(buckets), -1);
}

TEST(ExplosionDetection, ThresholdControlsSensitivity)
{
    BucketList buckets;
    buckets.push_back({1, NodeList(10)});
    buckets.push_back({2, NodeList(10)});
    buckets.push_back({3, NodeList(25)});
    // 25 vs mean(10,10)=10: ratio 2.5.
    EXPECT_EQ(findExplosionBucket(buckets, 2.0), 2);
    EXPECT_EQ(findExplosionBucket(buckets, 3.0), -1);
}

TEST(ExplosionDetection, NeedsAtLeastTwoBuckets)
{
    BucketList one;
    one.push_back({5, NodeList(100)});
    EXPECT_EQ(findExplosionBucket(one), -1);
    EXPECT_EQ(findExplosionBucket({}), -1);
}

} // namespace
} // namespace buffalo::sampling
