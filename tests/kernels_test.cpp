/**
 * @file
 * The determinism contract of the tensor::kernels layer (DESIGN.md,
 * "Compute kernels"): parallel execution must be *bitwise identical*
 * to serial execution — for every op, shape class (empty, single,
 * odd, tile-multiple, tile+1), tile configuration, and thread count —
 * and kernels invoked from inside a pool task must stay serial.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "nn/aggregators.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace buffalo::tensor {
namespace {

namespace ops = buffalo::tensor;

kernels::KernelConfig
serialConfig()
{
    kernels::KernelConfig cfg;
    cfg.threads = 1;
    return cfg;
}

/** Forces parallel dispatch for even the tiniest shapes. */
kernels::KernelConfig
parallelConfig(std::size_t threads = 4)
{
    kernels::KernelConfig cfg;
    cfg.threads = threads;
    cfg.min_parallel_work = 1;
    cfg.min_rows_per_task = 1;
    return cfg;
}

/**
 * SIMD modes the sweeps cover: the scalar path always, plus the wide
 * path (Auto and a forced On) whenever this build/CPU has it. On a
 * scalar-only host the sweep degenerates to Off/Auto, both scalar —
 * the widths that do exist are still pinned bit-for-bit.
 */
std::vector<kernels::SimdMode>
sweepSimdModes()
{
    std::vector<kernels::SimdMode> modes = {kernels::SimdMode::Off,
                                            kernels::SimdMode::Auto};
    if (kernels::simdAvailable())
        modes.push_back(kernels::SimdMode::On);
    return modes;
}

Tensor
randomTensor(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    Tensor t = Tensor::zeros(rows, cols);
    ops::fillUniform(t, 2.0f, rng);
    return t;
}

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    if (a.size() == 0)
        return true;
    return std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

/**
 * Naive references, written with the exact accumulation expression
 * forms the tiled kernels use (`acc += a * b`), so FP contraction
 * produces identical per-element operations.
 */
Tensor
refMatmul(const Tensor &a, const Tensor &b)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    Tensor c = Tensor::zeros(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        float *crow = c.data() + i * n;
        const float *arow = a.data() + i * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            const float *brow = b.data() + kk * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
refMatmulTransposeA(const Tensor &a, const Tensor &b)
{
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    Tensor c = Tensor::zeros(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        float *crow = c.data() + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = a.data()[kk * m + i];
            const float *brow = b.data() + kk * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
refMatmulTransposeB(const Tensor &a, const Tensor &b)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    Tensor c = Tensor::zeros(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float dot = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                dot += arow[kk] * brow[kk];
            crow[j] = dot;
        }
    }
    return c;
}

class KernelsTest : public ::testing::Test
{
  protected:
    void TearDown() override { kernels::setConfig({}); }
};

/** Shape classes: empty, single, odd, tile-multiple, tile+1. */
const std::size_t kDims[] = {0, 1, 3, 64, 65, 128};

TEST_F(KernelsTest, GemmBitwiseAcrossShapesTilesAndThreads)
{
    util::Rng rng(7);
    for (std::size_t m : kDims) {
        for (std::size_t k : kDims) {
            for (std::size_t n : kDims) {
                const Tensor a = randomTensor(m, k, rng);
                const Tensor b = randomTensor(k, n, rng);
                const Tensor at = randomTensor(k, m, rng);
                const Tensor bt = randomTensor(n, k, rng);

                // The baseline every width and thread count must
                // reproduce: serial scalar lanes.
                kernels::KernelConfig base = serialConfig();
                base.simd = kernels::SimdMode::Off;
                kernels::setConfig(base);
                const Tensor c1 = ops::matmul(a, b);
                const Tensor ta1 = ops::matmulTransposeA(at, b);
                const Tensor tb1 = ops::matmulTransposeB(a, bt);

                for (kernels::SimdMode mode : sweepSimdModes()) {
                    // Oddball tiles change nothing but iteration
                    // shape.
                    kernels::KernelConfig tiny = parallelConfig(3);
                    tiny.tile_n = 16;
                    tiny.tile_k = 8;
                    for (kernels::KernelConfig cfg :
                         {serialConfig(), parallelConfig(), tiny}) {
                        cfg.simd = mode;
                        kernels::setConfig(cfg);
                        EXPECT_TRUE(
                            bitwiseEqual(c1, ops::matmul(a, b)))
                            << m << "x" << k << "x" << n << " simd="
                            << kernels::simdModeName(mode)
                            << " threads=" << cfg.threads;
                        EXPECT_TRUE(bitwiseEqual(
                            ta1, ops::matmulTransposeA(at, b)))
                            << m << "x" << k << "x" << n << " simd="
                            << kernels::simdModeName(mode)
                            << " threads=" << cfg.threads;
                        EXPECT_TRUE(bitwiseEqual(
                            tb1, ops::matmulTransposeB(a, bt)))
                            << m << "x" << k << "x" << n << " simd="
                            << kernels::simdModeName(mode)
                            << " threads=" << cfg.threads;
                    }
                }

                // And serial matches the naive i-k-j reference.
                EXPECT_TRUE(bitwiseEqual(c1, refMatmul(a, b)));
                EXPECT_TRUE(
                    bitwiseEqual(ta1, refMatmulTransposeA(at, b)));
                EXPECT_TRUE(
                    bitwiseEqual(tb1, refMatmulTransposeB(a, bt)));
            }
        }
    }
}

TEST_F(KernelsTest, ElementwiseAndGatherBitwiseParallelVsSerial)
{
    util::Rng rng(11);
    for (std::size_t rows : {1u, 7u, 64u, 129u}) {
        const std::size_t cols = 33;
        const Tensor a = randomTensor(rows, cols, rng);
        const Tensor b = randomTensor(rows, cols, rng);
        const Tensor bias = randomTensor(1, cols, rng);
        std::vector<std::uint32_t> idx;
        for (std::size_t i = 0; i < 2 * rows; ++i)
            idx.push_back(
                static_cast<std::uint32_t>((i * 13) % rows));

        kernels::KernelConfig base = serialConfig();
        base.simd = kernels::SimdMode::Off;
        kernels::setConfig(base);
        const Tensor sums = ops::add(a, b);
        const Tensor relus = ops::relu(a);
        const Tensor sig = ops::sigmoid(a);
        const Tensor th = ops::tanh(a);
        const Tensor bc = ops::addRowBroadcast(a, bias);
        const Tensor csum = ops::columnSum(a);
        const Tensor cat = ops::concatColumns(a, b);
        const Tensor slice = ops::sliceColumns(a, 1, cols - 1);
        const Tensor gathered = ops::gatherRows(a, idx);
        Tensor scatter_serial = Tensor::zeros(rows, cols);
        ops::scatterAddRows(scatter_serial, gathered, idx);

        for (kernels::SimdMode mode : sweepSimdModes()) {
            for (kernels::KernelConfig cfg :
                 {serialConfig(), parallelConfig()}) {
                cfg.simd = mode;
                kernels::setConfig(cfg);
                const char *tag = kernels::simdModeName(mode);
                EXPECT_TRUE(bitwiseEqual(sums, ops::add(a, b)))
                    << tag;
                EXPECT_TRUE(bitwiseEqual(relus, ops::relu(a)))
                    << tag;
                EXPECT_TRUE(bitwiseEqual(sig, ops::sigmoid(a)))
                    << tag;
                EXPECT_TRUE(bitwiseEqual(th, ops::tanh(a))) << tag;
                EXPECT_TRUE(
                    bitwiseEqual(bc, ops::addRowBroadcast(a, bias)))
                    << tag;
                EXPECT_TRUE(bitwiseEqual(csum, ops::columnSum(a)))
                    << tag;
                EXPECT_TRUE(
                    bitwiseEqual(cat, ops::concatColumns(a, b)))
                    << tag;
                EXPECT_TRUE(bitwiseEqual(
                    slice, ops::sliceColumns(a, 1, cols - 1)))
                    << tag;
                const Tensor gathered_par = ops::gatherRows(a, idx);
                EXPECT_TRUE(bitwiseEqual(gathered, gathered_par))
                    << tag;
                // Duplicate indices: owner-partitioned scatter must
                // keep the serial input-ascending accumulation order
                // per output row.
                Tensor scatter_par = Tensor::zeros(rows, cols);
                ops::scatterAddRows(scatter_par, gathered_par, idx);
                EXPECT_TRUE(
                    bitwiseEqual(scatter_serial, scatter_par))
                    << tag;
            }
        }
    }
}

TEST_F(KernelsTest, AggregatorsBitwiseParallelVsSerial)
{
    const std::size_t dim = 24;
    for (const auto kind :
         {nn::AggregatorKind::Mean, nn::AggregatorKind::Gcn,
          nn::AggregatorKind::Pool, nn::AggregatorKind::Lstm}) {
        const std::vector<std::pair<std::size_t, std::size_t>>
            shapes = {{0, 1}, {1, 1}, {33, 3}, {130, 5}};
        for (const auto &[n, d] : shapes) {
            util::Rng data_rng(17);
            const Tensor feats =
                randomTensor(n * d, dim, data_rng);
            const Tensor grad = randomTensor(n, dim, data_rng);

            // Identical parameter init on both sides via a fixed
            // seed; ops inside fwd/bwd follow the active config.
            kernels::KernelConfig base = serialConfig();
            base.simd = kernels::SimdMode::Off;
            kernels::setConfig(base);
            util::Rng rng_a(23);
            auto agg_a =
                nn::makeAggregator(kind, "t", dim, rng_a);
            std::unique_ptr<nn::AggregatorCache> cache_a;
            const Tensor out_a =
                agg_a->forward(feats, n, d, cache_a);
            const Tensor gin_a = agg_a->backward(*cache_a, grad);
            EXPECT_EQ(out_a.rows(), n);
            EXPECT_EQ(gin_a.rows(), n * d);

            for (kernels::SimdMode mode : sweepSimdModes()) {
                for (kernels::KernelConfig cfg :
                     {serialConfig(), parallelConfig()}) {
                    cfg.simd = mode;
                    kernels::setConfig(cfg);
                    util::Rng rng_b(23);
                    auto agg_b =
                        nn::makeAggregator(kind, "t", dim, rng_b);
                    std::unique_ptr<nn::AggregatorCache> cache_b;
                    const Tensor out_b =
                        agg_b->forward(feats, n, d, cache_b);
                    const Tensor gin_b =
                        agg_b->backward(*cache_b, grad);

                    EXPECT_TRUE(bitwiseEqual(out_a, out_b))
                        << nn::aggregatorName(kind) << " fwd n=" << n
                        << " simd=" << kernels::simdModeName(mode)
                        << " threads=" << cfg.threads;
                    EXPECT_TRUE(bitwiseEqual(gin_a, gin_b))
                        << nn::aggregatorName(kind) << " bwd n=" << n
                        << " simd=" << kernels::simdModeName(mode)
                        << " threads=" << cfg.threads;
                }
            }
        }
    }
}

TEST_F(KernelsTest, ZeroTimesInfinityPropagatesNaN)
{
    // The old serial GEMM skipped a_ik == 0 inner loops, silently
    // turning 0 * inf into 0. The dense kernel must propagate NaN.
    const Tensor a = Tensor::zeros(1, 1);
    Tensor b = Tensor::zeros(1, 1);
    b.data()[0] = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(std::isnan(ops::matmul(a, b).data()[0]));
    EXPECT_TRUE(std::isnan(ops::matmulTransposeA(a, b).data()[0]));
    Tensor nan_b = Tensor::zeros(1, 1);
    nan_b.data()[0] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(ops::matmul(a, nan_b).data()[0]));
}

TEST_F(KernelsTest, UninitializedOutputsAreFullyOverwritten)
{
    // All-zero inputs must give exactly-zero outputs even though the
    // result buffers start uninitialized.
    const Tensor a = Tensor::zeros(65, 33);
    const Tensor b = Tensor::zeros(33, 17);
    kernels::setConfig(parallelConfig());
    const Tensor c = ops::matmul(a, b);
    for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_EQ(c.data()[i], 0.0f);
    const Tensor s = ops::scale(a, 3.0f);
    for (std::size_t i = 0; i < s.size(); ++i)
        ASSERT_EQ(s.data()[i], 0.0f);
}

TEST_F(KernelsTest, NestedInvocationStaysSerial)
{
    kernels::setConfig(parallelConfig());
    util::Rng rng(3);
    const Tensor a = randomTensor(64, 64, rng);
    const Tensor b = randomTensor(64, 64, rng);
    auto &parallel_ops = obs::metrics().counter(
        obs::names::kCtrKernelsParallelOps);
    auto &serial_ops =
        obs::metrics().counter(obs::names::kCtrKernelsSerialOps);

    // From the main thread this shape dispatches in parallel...
    const std::uint64_t par0 = parallel_ops.value();
    ops::matmul(a, b);
    EXPECT_GT(parallel_ops.value(), par0);

    // ...but from inside any pool task it must stay serial (the
    // compute layer composes with the prefetch pipeline instead of
    // oversubscribing it).
    util::ThreadPool pool(2);
    const std::uint64_t par1 = parallel_ops.value();
    const std::uint64_t ser1 = serial_ops.value();
    util::ParallelForOptions opts;
    opts.grain = 1;
    Tensor results[2];
    pool.parallelFor(0, 2, opts, [&](std::size_t i) {
        results[i] = ops::matmul(a, b);
    });
    EXPECT_EQ(parallel_ops.value(), par1);
    EXPECT_GE(serial_ops.value(), ser1 + 2);
    EXPECT_TRUE(bitwiseEqual(results[0], results[1]));
}

TEST_F(KernelsTest, OpTimerRecordsExactCallAndByteCounts)
{
    auto &calls =
        obs::metrics().counter(obs::names::kCtrKernelsGemmCalls);
    auto &bytes =
        obs::metrics().counter(obs::names::kCtrKernelsGemmBytes);
    auto &flops =
        obs::metrics().counter(obs::names::kCtrKernelsGemmFlops);
    const std::uint64_t c0 = calls.value();
    const std::uint64_t b0 = bytes.value();
    const std::uint64_t f0 = flops.value();
    util::Rng rng(5);
    const Tensor a = randomTensor(8, 16, rng);
    const Tensor b = randomTensor(16, 4, rng);
    ops::matmul(a, b);
    EXPECT_EQ(calls.value(), c0 + 1);
    EXPECT_EQ(bytes.value(),
              b0 + (8 * 16 + 16 * 4 + 8 * 4) * sizeof(float));
    EXPECT_EQ(flops.value(), f0 + 2ull * 8 * 16 * 4);
}

TEST_F(KernelsTest, ConfigSanitizesDegenerateTiles)
{
    kernels::KernelConfig cfg;
    cfg.tile_n = 0;
    cfg.tile_k = 0;
    cfg.min_rows_per_task = 0;
    cfg.threads = 4;
    kernels::setConfig(cfg);
    EXPECT_EQ(kernels::config().tile_n, 1u);
    EXPECT_EQ(kernels::config().tile_k, 1u);
    EXPECT_EQ(kernels::config().min_rows_per_task, 1u);
    EXPECT_EQ(kernels::effectiveThreads(), 4u);
}

TEST_F(KernelsTest, GrainPolicyKeepsMicroBucketsSerial)
{
    // Default min_parallel_work (32k scalar ops) must leave a
    // micro-bucket-sized GEMM on the calling thread.
    kernels::KernelConfig cfg;
    cfg.threads = 4;
    kernels::setConfig(cfg);
    auto &parallel_ops = obs::metrics().counter(
        obs::names::kCtrKernelsParallelOps);
    util::Rng rng(9);
    const Tensor a = randomTensor(4, 8, rng);
    const Tensor b = randomTensor(8, 4, rng);
    const std::uint64_t par0 = parallel_ops.value();
    ops::matmul(a, b); // 128 scalar ops — far below the grain
    EXPECT_EQ(parallel_ops.value(), par0);
}

TEST_F(KernelsTest, SimdQueriesReflectActiveMode)
{
    kernels::KernelConfig off;
    off.simd = kernels::SimdMode::Off;
    kernels::setConfig(off);
    EXPECT_EQ(kernels::simdWidth(), 1u);

    kernels::setConfig({}); // Auto
    if (kernels::simdAvailable()) {
        EXPECT_GT(kernels::simdWidth(), 1u);
        EXPECT_STRNE(kernels::simdIsaName(), "scalar");
    } else {
        EXPECT_EQ(kernels::simdWidth(), 1u);
    }

    EXPECT_EQ(kernels::simdModeFromName("auto"),
              kernels::SimdMode::Auto);
    EXPECT_EQ(kernels::simdModeFromName("off"),
              kernels::SimdMode::Off);
    EXPECT_EQ(kernels::simdModeFromName("on"),
              kernels::SimdMode::On);
    EXPECT_THROW(kernels::simdModeFromName("wide"),
                 InvalidArgument);
    EXPECT_STREQ(kernels::simdModeName(kernels::SimdMode::Off),
                 "off");
    EXPECT_STREQ(kernels::simdModeName(kernels::SimdMode::Auto),
                 "auto");
}

TEST_F(KernelsTest, FusedAggregateKernelsMatchScalarComposition)
{
    // The fused gather->reduce->scatter entry points against plain
    // scalar references written with the exact same expression
    // forms, across every SIMD mode x thread count.
    const std::size_t n = 67, d = 3, dim = 21;
    util::Rng rng(29);
    const Tensor x = randomTensor(n * d, dim, rng);
    const Tensor grad = randomTensor(n, dim, rng);
    std::vector<std::uint32_t> gather(n * d);
    std::vector<std::uint32_t> out_rows(n);
    for (std::size_t i = 0; i < n * d; ++i)
        gather[i] = static_cast<std::uint32_t>((i * 29) % (n * d));
    for (std::size_t i = 0; i < n; ++i)
        out_rows[i] = static_cast<std::uint32_t>((i * 31) % n);
    const float norm = 1.0f / static_cast<float>(d);

    // References: t-ascending accumulate, then scale (sum-scale);
    // two-rounding multiply-accumulate (scaled-add / scatter).
    Tensor ref_sum = Tensor::zeros(n, dim);
    Tensor ref_add = Tensor::zeros(n, dim);
    Tensor ref_scatter = Tensor::zeros(n * d, dim);
    for (std::size_t i = 0; i < n; ++i) {
        float *sum_row = ref_sum.data() + out_rows[i] * dim;
        float *add_row = ref_add.data() + out_rows[i] * dim;
        std::memset(sum_row, 0, dim * sizeof(float));
        for (std::size_t t = 0; t < d; ++t) {
            const float *src =
                x.data() + gather[i * d + t] * dim;
            for (std::size_t j = 0; j < dim; ++j)
                sum_row[j] += src[j];
        }
        for (std::size_t j = 0; j < dim; ++j)
            sum_row[j] *= norm;
        for (std::size_t t = 0; t < d; ++t) {
            const float *src =
                x.data() + gather[i * d + t] * dim;
            for (std::size_t j = 0; j < dim; ++j)
                add_row[j] += src[j] * norm;
        }
        const float *grow = grad.data() + out_rows[i] * dim;
        for (std::size_t t = 0; t < d; ++t) {
            float *dst =
                ref_scatter.data() + gather[i * d + t] * dim;
            for (std::size_t j = 0; j < dim; ++j) {
                const float g = grow[j] * norm;
                dst[j] += g;
            }
        }
    }
    // The scaled-add reference accumulated in out_rows order per i;
    // fusedGatherScaledAdd also walks i ascending with dst[out_rows]
    // — out_rows here is a permutation, so each output row is built
    // by exactly one i on both sides.

    for (kernels::SimdMode mode : sweepSimdModes()) {
        for (kernels::KernelConfig cfg :
             {serialConfig(), parallelConfig()}) {
            cfg.simd = mode;
            kernels::setConfig(cfg);
            const char *tag = kernels::simdModeName(mode);

            Tensor out_sum = Tensor::zeros(n, dim);
            kernels::fusedGatherSumScale(x.data(), gather.data(),
                                         out_rows.data(), n, d, dim,
                                         norm, out_sum.data());
            EXPECT_TRUE(bitwiseEqual(ref_sum, out_sum)) << tag;

            Tensor out_add = Tensor::zeros(n, dim);
            kernels::fusedGatherScaledAdd(x.data(), gather.data(),
                                          out_rows.data(), n, d,
                                          dim, norm,
                                          out_add.data());
            EXPECT_TRUE(bitwiseEqual(ref_add, out_add)) << tag;

            Tensor out_scatter = Tensor::zeros(n * d, dim);
            kernels::fusedScatterScaledAdd(
                grad.data(), out_rows.data(), gather.data(), n, d,
                dim, norm, out_scatter.data(), n * d);
            EXPECT_TRUE(bitwiseEqual(ref_scatter, out_scatter))
                << tag;
        }
    }
}

} // namespace
} // namespace buffalo::tensor
