/**
 * @file
 * Tests for graph/dataset (de)serialization: edge lists and binary
 * dataset bundles.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "util/errors.h"
#include "util/rng.h"

namespace buffalo::graph {
namespace {

TEST(EdgeList, ParsesPairsCommentsAndBlanks)
{
    std::istringstream in("# a comment\n"
                          "0 1\n"
                          "\n"
                          "  2 0\n"
                          "1 2\n");
    CsrGraph g = readEdgeList(in, /*symmetrize=*/false);
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_TRUE(g.hasEdge(1, 0)); // edge 0 -> 1 (in-CSR row of 1)
    EXPECT_TRUE(g.hasEdge(0, 2));
}

TEST(EdgeList, SymmetrizeDoublesEdges)
{
    std::istringstream in("0 1\n1 2\n");
    CsrGraph g = readEdgeList(in, /*symmetrize=*/true);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
}

TEST(EdgeList, RejectsMalformedLines)
{
    std::istringstream bad("0 x\n");
    EXPECT_THROW(readEdgeList(bad), InvalidArgument);
    std::istringstream negative("0 -1\n");
    EXPECT_THROW(readEdgeList(negative), InvalidArgument);
    std::istringstream too_big("0 9\n");
    EXPECT_THROW(readEdgeList(too_big, true, 5), InvalidArgument);
}

TEST(EdgeList, ExplicitNodeCountAddsIsolated)
{
    std::istringstream in("0 1\n");
    CsrGraph g = readEdgeList(in, true, 10);
    EXPECT_EQ(g.numNodes(), 10u);
    EXPECT_EQ(g.countZeroDegreeNodes(), 8u);
}

TEST(EdgeList, RoundTripPreservesGraph)
{
    util::Rng rng(1);
    CsrGraph original = generateBarabasiAlbert(200, 3, rng);
    std::stringstream buffer;
    writeEdgeList(buffer, original);
    // The writer emits directed edges; read back without symmetrize.
    CsrGraph restored =
        readEdgeList(buffer, /*symmetrize=*/false,
                     original.numNodes());
    EXPECT_EQ(restored.offsets(), original.offsets());
    EXPECT_EQ(restored.targets(), original.targets());
}

TEST(EdgeList, MissingFileThrowsNotFound)
{
    EXPECT_THROW(readEdgeListFile("/nonexistent/graph.txt"),
                 NotFound);
}

TEST(Bundle, RoundTripPreservesEverything)
{
    Dataset original = loadDataset(DatasetId::Arxiv, 7, 0.05);
    std::stringstream buffer;
    saveDataset(buffer, original);
    Dataset restored = loadDatasetBundle(buffer);

    EXPECT_EQ(restored.name(), original.name());
    EXPECT_EQ(restored.spec().paper_power_law,
              original.spec().paper_power_law);
    EXPECT_EQ(restored.spec().num_classes,
              original.spec().num_classes);
    EXPECT_EQ(restored.graph().offsets(),
              original.graph().offsets());
    EXPECT_EQ(restored.graph().targets(),
              original.graph().targets());
    EXPECT_EQ(restored.labels(), original.labels());
    EXPECT_EQ(restored.trainNodes(), original.trainNodes());
    EXPECT_EQ(restored.seed(), original.seed());

    // Features regenerate identically from the stored seed.
    std::vector<float> a(original.featureDim());
    std::vector<float> b(restored.featureDim());
    ASSERT_EQ(a.size(), b.size());
    original.fillFeatures(3, a);
    restored.fillFeatures(3, b);
    EXPECT_EQ(a, b);
}

TEST(Bundle, CustomDatasetRoundTrip)
{
    util::Rng rng(2);
    CsrGraph g = generateWattsStrogatz(100, 2, 0.2, rng);
    std::vector<std::int32_t> labels(100);
    for (std::size_t i = 0; i < labels.size(); ++i)
        labels[i] = static_cast<std::int32_t>(i % 4);
    Dataset original =
        makeDataset("custom", std::move(g), std::move(labels), 4, 16,
                    0.3, 99);

    std::stringstream buffer;
    saveDataset(buffer, original);
    Dataset restored = loadDatasetBundle(buffer);
    EXPECT_EQ(restored.name(), "custom");
    EXPECT_EQ(restored.labels(), original.labels());
    EXPECT_EQ(restored.featureDim(), 16);
}

TEST(Bundle, RejectsCorruptStreams)
{
    std::istringstream bad_magic("NOPE....");
    EXPECT_THROW(loadDatasetBundle(bad_magic), InvalidArgument);

    Dataset original = loadDataset(DatasetId::Cora, 1, 0.1);
    std::stringstream buffer;
    saveDataset(buffer, original);
    std::string bytes = buffer.str();
    std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(loadDatasetBundle(truncated), InvalidArgument);
}

TEST(Bundle, MissingFileThrowsNotFound)
{
    EXPECT_THROW(loadDatasetBundleFile("/nonexistent/data.bufd"),
                 NotFound);
}

TEST(MakeDataset, ValidatesInputs)
{
    util::Rng rng(3);
    CsrGraph g = generateWattsStrogatz(50, 2, 0.2, rng);
    std::vector<std::int32_t> short_labels(10);
    EXPECT_THROW(makeDataset("x", g, short_labels, 4, 8, 0.2),
                 InvalidArgument);
    std::vector<std::int32_t> bad_labels(50, 9); // >= num_classes
    EXPECT_THROW(makeDataset("x", g, bad_labels, 4, 8, 0.2),
                 InvalidArgument);
}

} // namespace
} // namespace buffalo::graph
