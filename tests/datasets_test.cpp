/**
 * @file
 * Tests for the simulated dataset registry against the published
 * Table II characteristics each dataset emulates.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/datasets.h"
#include "graph/stats.h"
#include "util/errors.h"
#include "util/rng.h"

namespace buffalo::graph {
namespace {

TEST(DatasetSpecs, RegistryComplete)
{
    EXPECT_EQ(allDatasetIds().size(), 6u);
    for (DatasetId id : allDatasetIds()) {
        const DatasetSpec &spec = datasetSpec(id);
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GT(spec.sim_nodes, 0u);
        EXPECT_GT(spec.num_classes, 1);
        EXPECT_EQ(&datasetSpecByName(spec.name), &spec);
    }
}

TEST(DatasetSpecs, UnknownNameThrows)
{
    EXPECT_THROW(datasetSpecByName("no-such-dataset"), NotFound);
}

/** Property suite over every dataset (scaled down for test speed). */
class DatasetProperty : public ::testing::TestWithParam<DatasetId>
{
  protected:
    Dataset
    load(double scale = 0.2)
    {
        return loadDataset(GetParam(), 42, scale);
    }
};

TEST_P(DatasetProperty, LabelsInRange)
{
    Dataset data = load();
    for (auto label : data.labels()) {
        ASSERT_GE(label, 0);
        ASSERT_LT(label, data.numClasses());
    }
    EXPECT_EQ(data.labels().size(), data.graph().numNodes());
}

TEST_P(DatasetProperty, FeaturesDeterministic)
{
    Dataset data = load();
    std::vector<float> a(data.featureDim()), b(data.featureDim());
    data.fillFeatures(0, a);
    data.fillFeatures(0, b);
    EXPECT_EQ(a, b);
    // Different nodes of potentially different labels should differ.
    data.fillFeatures(1, b);
    EXPECT_NE(a, b);
}

TEST_P(DatasetProperty, TrainNodesValidAndSorted)
{
    Dataset data = load();
    ASSERT_FALSE(data.trainNodes().empty());
    NodeId prev = 0;
    bool first = true;
    for (NodeId node : data.trainNodes()) {
        ASSERT_LT(node, data.graph().numNodes());
        if (!first)
            ASSERT_GT(node, prev);
        prev = node;
        first = false;
    }
}

TEST_P(DatasetProperty, PowerLawVerdictMatchesPaper)
{
    // Full-size sim: the verdict column of Table II must reproduce.
    Dataset data = loadDataset(GetParam(), 42, 1.0);
    PowerLawFit fit = fitPowerLaw(data.graph());
    EXPECT_EQ(fit.is_power_law, data.spec().paper_power_law)
        << data.name() << " alpha=" << fit.alpha;
}

TEST_P(DatasetProperty, ReproducibleFromSeed)
{
    Dataset a = load();
    Dataset b = load();
    EXPECT_EQ(a.graph().targets(), b.graph().targets());
    EXPECT_EQ(a.labels(), b.labels());
    EXPECT_EQ(a.trainNodes(), b.trainNodes());
}

TEST_P(DatasetProperty, LabelsAreHomophilous)
{
    // Label propagation should make neighbors agree far more often
    // than chance — the property real citation graphs have and the
    // convergence experiments rely on.
    Dataset data = load();
    const CsrGraph &g = data.graph();
    std::uint64_t same = 0, total = 0;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            ++total;
            if (data.labels()[u] == data.labels()[v])
                ++same;
        }
    }
    ASSERT_GT(total, 0u);
    const double agreement = static_cast<double>(same) / total;
    const double chance = 1.0 / data.numClasses();
    EXPECT_GT(agreement, std::min(2.0 * chance, chance + 0.15))
        << data.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetProperty,
    ::testing::ValuesIn(allDatasetIds()),
    [](const ::testing::TestParamInfo<DatasetId> &info) {
        std::string name = datasetSpec(info.param).name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(PapersDataset, HasZeroInEdgeNodes)
{
    // papers-sim must reproduce the zero-in-edge nodes that break
    // Betty (paper Fig. 11).
    Dataset data = loadDataset(DatasetId::Papers, 42, 0.2);
    EXPECT_GT(data.graph().countZeroDegreeNodes(), 0u);
}

TEST(OtherDatasets, NoIsolatedNodes)
{
    Dataset data = loadDataset(DatasetId::Arxiv, 42, 0.2);
    EXPECT_EQ(data.graph().countZeroDegreeNodes(), 0u);
}

TEST(Datasets, ScaleParameterScalesNodes)
{
    Dataset small = loadDataset(DatasetId::Cora, 42, 0.25);
    Dataset large = loadDataset(DatasetId::Cora, 42, 1.0);
    EXPECT_LT(small.graph().numNodes(), large.graph().numNodes());
    EXPECT_NEAR(static_cast<double>(small.graph().numNodes()) /
                    large.graph().numNodes(),
                0.25, 0.05);
}

TEST(Datasets, ClusteringTracksPaperOrdering)
{
    // Absolute coefficients need not match Table II, but the ordering
    // between a high-clustering and a low-clustering dataset must.
    Dataset products = loadDataset(DatasetId::Products, 42, 0.3);
    Dataset papers = loadDataset(DatasetId::Papers, 42, 0.3);
    util::Rng rng(13);
    const double c_products =
        sampledClusteringCoefficient(products.graph(), 400, rng);
    const double c_papers =
        sampledClusteringCoefficient(papers.graph(), 400, rng);
    EXPECT_GT(c_products, c_papers);
}

TEST(Datasets, FillFeaturesValidatesArgs)
{
    Dataset data = loadDataset(DatasetId::Cora, 42, 0.1);
    std::vector<float> wrong(data.featureDim() + 1);
    EXPECT_THROW(data.fillFeatures(0, wrong), InvalidArgument);
    std::vector<float> right(data.featureDim());
    EXPECT_THROW(data.fillFeatures(data.graph().numNodes(), right),
                 InvalidArgument);
}

} // namespace
} // namespace buffalo::graph
