/**
 * @file
 * Tests for the serving subsystem (DESIGN.md, "Serving"): admission
 * queue shedding and deadline expiry, batcher determinism, the
 * PendingRequest promise contract, bitwise parity of
 * forwardInference with the training forward across model kinds and
 * kernel thread counts, and an end-to-end Server smoke.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "nn/gat_model.h"
#include "nn/gcn_model.h"
#include "nn/sage_model.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"
#include "serve/serve_loop.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "train/feature_loader.h"
#include "util/rng.h"

namespace buffalo::serve {
namespace {

InferenceRequest
makeRequest(std::uint64_t id, double deadline_ms = 1000.0)
{
    InferenceRequest request;
    request.id = id;
    request.seed = static_cast<graph::NodeId>(id % 7);
    request.submit_time = Clock::now();
    request.deadline =
        request.submit_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
    return request;
}

// --- PendingRequest promise contract ---------------------------------

TEST(PendingRequest, FulfillDeliversOnce)
{
    PendingRequest pending(makeRequest(7));
    auto future = pending.takeFuture();
    auto first = pending.fulfill(ResponseStatus::Ok, Clock::now(), 3,
                                 0.5f);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->predicted_class, 3);
    // Later fulfills are no-ops and report nullopt.
    EXPECT_FALSE(
        pending.fulfill(ResponseStatus::Failed, Clock::now())
            .has_value());
    auto response = future.get();
    EXPECT_EQ(response.id, 7u);
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_TRUE(response.deadline_met);
}

TEST(PendingRequest, DroppedRequestResolvesToFailed)
{
    std::future<InferenceResponse> future;
    {
        PendingRequest pending(makeRequest(9));
        future = pending.takeFuture();
        // Destroyed without fulfillment: queue drop / shutdown path.
    }
    auto response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::Failed);
    EXPECT_EQ(response.predicted_class, -1);
}

TEST(PendingRequest, MoveTransfersResponsibility)
{
    PendingRequest pending(makeRequest(11));
    auto future = pending.takeFuture();
    PendingRequest moved = std::move(pending);
    // The moved-from shell must not resolve the promise on destruction.
    EXPECT_TRUE(moved.fulfill(ResponseStatus::Ok, Clock::now(), 1,
                              1.0f)
                    .has_value());
    EXPECT_EQ(future.get().status, ResponseStatus::Ok);
}

// --- AdmissionQueue ---------------------------------------------------

TEST(AdmissionQueue, ShedsWhenFull)
{
    AdmissionQueue queue(2);
    PendingRequest a(makeRequest(1));
    PendingRequest b(makeRequest(2));
    PendingRequest c(makeRequest(3));
    EXPECT_TRUE(queue.tryPush(a));
    EXPECT_TRUE(queue.tryPush(b));
    // Full: the third push is refused and the request stays with the
    // caller, who can still deliver the Shed verdict.
    auto future = c.takeFuture();
    EXPECT_FALSE(queue.tryPush(c));
    EXPECT_TRUE(
        c.fulfill(ResponseStatus::Shed, Clock::now()).has_value());
    EXPECT_EQ(future.get().status, ResponseStatus::Shed);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.maxOccupancy(), 2u);
}

TEST(AdmissionQueue, PopPartitionsExpiredRequests)
{
    AdmissionQueue queue(8);
    PendingRequest fresh(makeRequest(1, /*deadline_ms=*/60000.0));
    PendingRequest stale(makeRequest(2, /*deadline_ms=*/-1.0));
    EXPECT_TRUE(queue.tryPush(fresh));
    EXPECT_TRUE(queue.tryPush(stale));

    std::vector<PendingRequest> out;
    std::vector<PendingRequest> expired;
    EXPECT_TRUE(queue.popBatch(8, &out, &expired));
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(out[0].request().id, 1u);
    EXPECT_EQ(expired[0].request().id, 2u);
}

TEST(AdmissionQueue, CloseRefusesPushAndDrains)
{
    AdmissionQueue queue(4);
    PendingRequest a(makeRequest(1));
    EXPECT_TRUE(queue.tryPush(a));
    queue.close();
    PendingRequest b(makeRequest(2));
    EXPECT_FALSE(queue.tryPush(b));

    std::vector<PendingRequest> out;
    std::vector<PendingRequest> expired;
    // Queued items remain poppable after close...
    EXPECT_TRUE(queue.popBatch(4, &out, &expired));
    EXPECT_EQ(out.size() + expired.size(), 1u);
    // ...and once empty, popBatch signals the consumer to exit.
    out.clear();
    expired.clear();
    EXPECT_FALSE(queue.popBatch(4, &out, &expired));
}

// --- Batcher ----------------------------------------------------------

nn::ModelConfig
serveModelConfig()
{
    nn::ModelConfig config;
    config.num_layers = 2;
    config.feature_dim = 6;
    config.hidden_dim = 8;
    config.num_classes = 3;
    return config;
}

std::vector<PendingRequest>
pendingBatch(std::size_t count)
{
    std::vector<PendingRequest> pending;
    for (std::size_t i = 0; i < count; ++i)
        pending.emplace_back(makeRequest(i + 1));
    return pending;
}

TEST(Batcher, ChunksByMaxBatch)
{
    Batcher batcher(serveModelConfig(), {4, 6}, /*max_batch=*/3,
                    /*byte_budget=*/0);
    auto plans = batcher.plan(pendingBatch(8));
    ASSERT_EQ(plans.size(), 3u);
    EXPECT_EQ(plans[0].requests.size(), 3u);
    EXPECT_EQ(plans[1].requests.size(), 3u);
    EXPECT_EQ(plans[2].requests.size(), 2u);
    // Order preserved across the chunk boundary.
    EXPECT_EQ(plans[0].requests[0].request().id, 1u);
    EXPECT_EQ(plans[2].requests[1].request().id, 8u);
    // Plan ids increase in planning order.
    EXPECT_LT(plans[0].id, plans[1].id);
    EXPECT_LT(plans[1].id, plans[2].id);
}

TEST(Batcher, ChunksByByteBudget)
{
    Batcher probe(serveModelConfig(), {4, 6}, 32, 0);
    const std::uint64_t per_request = probe.estimateRequestBytes();
    ASSERT_GT(per_request, 0u);

    // Budget for exactly two requests: plans of size <= 2 even though
    // max_batch would allow far more.
    Batcher batcher(serveModelConfig(), {4, 6}, /*max_batch=*/32,
                    /*byte_budget=*/2 * per_request);
    auto plans = batcher.plan(pendingBatch(5));
    ASSERT_EQ(plans.size(), 3u);
    EXPECT_EQ(plans[0].requests.size(), 2u);
    EXPECT_EQ(plans[1].requests.size(), 2u);
    EXPECT_EQ(plans[2].requests.size(), 1u);
    for (const BatchPlan &plan : plans)
        EXPECT_LE(plan.estimated_bytes, 2 * per_request);
}

TEST(Batcher, PlanIsDeterministic)
{
    auto shape = [](const std::vector<BatchPlan> &plans) {
        std::vector<std::pair<std::size_t, std::uint64_t>> out;
        for (const BatchPlan &plan : plans)
            out.emplace_back(plan.requests.size(),
                             plan.estimated_bytes);
        return out;
    };
    Batcher first(serveModelConfig(), {4, 6}, 4, 0);
    Batcher second(serveModelConfig(), {4, 6}, 4, 0);
    // The same pending sequence must produce the same plan shapes
    // regardless of which batcher instance (or run) planned it.
    EXPECT_EQ(shape(first.plan(pendingBatch(11))),
              shape(second.plan(pendingBatch(11))));
}

// --- forwardInference parity ------------------------------------------

sampling::MicroBatch
datasetBatch(const graph::Dataset &data, std::size_t seeds_count,
             graph::NodeList *inputs)
{
    sampling::NeighborSampler sampler({4, 6});
    util::Rng rng(17);
    graph::NodeList seeds;
    for (std::size_t i = 0; i < seeds_count; ++i)
        seeds.push_back(static_cast<graph::NodeId>(
            (i * 37) % data.graph().numNodes()));
    auto sg = sampler.sample(data.graph(), seeds, rng);
    graph::NodeList locals(seeds.size());
    for (std::size_t i = 0; i < locals.size(); ++i)
        locals[i] = static_cast<graph::NodeId>(i);
    sampling::FastBlockGenerator generator;
    auto mb = generator.generate(sg, locals);
    *inputs = mb.inputNodes();
    return mb;
}

/** Bitwise comparison of forward() and forwardInference() for one
 *  model type at one kernel thread count. */
template <typename Model>
void
expectParity(const nn::ModelConfig &config, std::size_t threads)
{
    tensor::kernels::KernelConfig kernels;
    kernels.threads = threads;
    tensor::kernels::setConfig(kernels);

    auto data = graph::loadDataset(graph::DatasetId::Cora, 42, 0.25);
    nn::ModelConfig sized = config;
    sized.feature_dim = data.featureDim();
    sized.num_classes = data.numClasses();
    Model model(sized, /*seed=*/5);

    graph::NodeList inputs;
    auto mb = datasetBatch(data, 24, &inputs);
    nn::Tensor feats = train::loadFeatures(data, inputs);

    typename Model::ForwardCache cache;
    nn::Tensor trained = model.forward(mb, feats, cache);
    nn::Tensor served = model.forwardInference(mb, feats);
    ASSERT_EQ(trained.rows(), served.rows());
    ASSERT_EQ(trained.cols(), served.cols());
    EXPECT_EQ(std::memcmp(trained.data(), served.data(),
                          trained.size() * sizeof(float)),
              0)
        << "threads=" << threads;

    tensor::kernels::setConfig(tensor::kernels::KernelConfig{});
}

TEST(ForwardInference, SageBitwiseParity)
{
    nn::ModelConfig config = serveModelConfig();
    for (std::size_t threads : {1, 4}) {
        config.aggregator = nn::AggregatorKind::Mean;
        expectParity<nn::SageModel>(config, threads);
        config.aggregator = nn::AggregatorKind::Lstm;
        expectParity<nn::SageModel>(config, threads);
    }
}

TEST(ForwardInference, GcnBitwiseParity)
{
    for (std::size_t threads : {1, 4})
        expectParity<nn::GcnModel>(serveModelConfig(), threads);
}

TEST(ForwardInference, GatBitwiseParity)
{
    // Cora has 7 classes, so multi-head configs are out (heads must
    // divide every layer's output width); single-head still exercises
    // the full attention path.
    nn::ModelConfig config = serveModelConfig();
    config.num_heads = 1;
    for (std::size_t threads : {1, 4})
        expectParity<nn::GatModel>(config, threads);
}

// --- Server end-to-end --------------------------------------------------

ServeOptions
serverOptions(const graph::Dataset &data)
{
    ServeOptions options;
    options.model_kind = train::ModelKind::Sage;
    options.model = serveModelConfig();
    options.model.feature_dim = data.featureDim();
    options.model.num_classes = data.numClasses();
    options.fanouts = {4, 6};
    options.max_batch = 8;
    options.deadline_ms = 60000.0; // effectively no deadline
    options.prep_threads = 2;
    options.workers = 2;
    options.seed = 5;
    return options;
}

TEST(Server, AnswersEveryRequest)
{
    auto data = graph::loadDataset(graph::DatasetId::Cora, 42, 0.25);
    Server server(serverOptions(data), data);

    std::vector<std::future<InferenceResponse>> futures;
    for (std::size_t i = 0; i < 40; ++i)
        futures.push_back(server.submit(static_cast<graph::NodeId>(
            (i * 13) % data.graph().numNodes())));
    for (auto &future : futures) {
        auto response = future.get();
        EXPECT_EQ(response.status, ResponseStatus::Ok);
        EXPECT_GE(response.predicted_class, 0);
        EXPECT_LT(response.predicted_class, data.numClasses());
        EXPECT_TRUE(response.deadline_met);
        EXPECT_GE(response.latency_ms, response.queue_ms);
    }
    server.shutdown();

    const ServeSnapshot snap = server.stats();
    EXPECT_EQ(snap.submitted, 40u);
    EXPECT_EQ(snap.completed, 40u);
    EXPECT_EQ(snap.shed, 0u);
    EXPECT_EQ(snap.expired, 0u);
    EXPECT_EQ(snap.errors, 0u);
    EXPECT_EQ(snap.deadline_misses, 0u);
    EXPECT_EQ(snap.shed_rate, 0.0);
    EXPECT_GT(snap.batches, 0u);
}

TEST(Server, ZeroDeadlineExpiresQueuedRequests)
{
    auto data = graph::loadDataset(graph::DatasetId::Cora, 42, 0.25);
    ServeOptions options = serverOptions(data);
    // Every request's deadline equals its submit time, so it has
    // always passed by the time the batcher drains the queue.
    options.deadline_ms = 0.0;
    Server server(options, data);

    std::vector<std::future<InferenceResponse>> futures;
    for (std::size_t i = 0; i < 16; ++i)
        futures.push_back(server.submit(static_cast<graph::NodeId>(i)));
    std::size_t expired = 0;
    for (auto &future : futures)
        if (future.get().status == ResponseStatus::Expired)
            ++expired;
    server.shutdown();

    EXPECT_EQ(expired, 16u);
    EXPECT_EQ(server.stats().expired, 16u);
    EXPECT_EQ(server.stats().completed, 0u);
}

TEST(Server, OutOfRangeSeedFails)
{
    auto data = graph::loadDataset(graph::DatasetId::Cora, 42, 0.25);
    Server server(serverOptions(data), data);
    auto response =
        server
            .submit(static_cast<graph::NodeId>(
                data.graph().numNodes() + 100))
            .get();
    EXPECT_EQ(response.status, ResponseStatus::Failed);
    server.shutdown();
    EXPECT_EQ(server.stats().errors, 1u);
}

TEST(Server, ShutdownFailsStragglersInsteadOfHanging)
{
    auto data = graph::loadDataset(graph::DatasetId::Cora, 42, 0.25);
    auto server = std::make_unique<Server>(serverOptions(data), data);
    std::vector<std::future<InferenceResponse>> futures;
    for (std::size_t i = 0; i < 8; ++i)
        futures.push_back(server->submit(static_cast<graph::NodeId>(i)));
    // Destroy the server immediately; every future must still
    // resolve (Ok for whatever drained, Failed for the rest) —
    // never a broken promise.
    server.reset();
    for (auto &future : futures) {
        auto response = future.get();
        EXPECT_TRUE(response.status == ResponseStatus::Ok ||
                    response.status == ResponseStatus::Failed ||
                    response.status == ResponseStatus::Expired);
    }
}

} // namespace
} // namespace buffalo::serve
