/**
 * @file
 * Direct unit tests for tools/cli_common.h — the flag vocabulary
 * shared by buffalo_train and buffalo_serve. Until now this parsing
 * was only exercised end-to-end through the CLIs; these tests pin the
 * contract down at the function level: bad --cache-policy names and
 * out-of-range --presample-batches are rejected with InvalidArgument,
 * and a given flag vector decodes to the *same* CacheCliOptions no
 * matter which CLI passes it in (train/serve parity).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cli_common.h"
#include "util/errors.h"
#include "util/flags.h"

namespace {

using buffalo::tools::CacheCliOptions;
using buffalo::tools::parseCacheFlags;
using buffalo::tools::parseFanouts;
using buffalo::tools::parseKernelConfig;
using buffalo::util::Flags;
namespace kernels = buffalo::tensor::kernels;

Flags
makeFlags(const std::vector<std::string> &args)
{
    std::vector<const char *> argv = {"test_cli"};
    for (const std::string &arg : args)
        argv.push_back(arg.c_str());
    return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(CliCommonTest, ParsesFanoutLists)
{
    EXPECT_EQ(parseFanouts("10,5"), (std::vector<int>{10, 5}));
    EXPECT_EQ(parseFanouts("25,10,5"),
              (std::vector<int>{25, 10, 5}));
    EXPECT_EQ(parseFanouts("7"), (std::vector<int>{7}));
}

TEST(CliCommonTest, RejectsEmptyFanoutEntries)
{
    EXPECT_THROW(parseFanouts("10,,5"), buffalo::InvalidArgument);
    EXPECT_THROW(parseFanouts(""), buffalo::InvalidArgument);
    EXPECT_THROW(parseFanouts("10,5,"), buffalo::InvalidArgument);
}

TEST(CliCommonTest, ResolvesKnownDatasetNames)
{
    EXPECT_EQ(buffalo::tools::datasetIdFromName("cora"),
              buffalo::graph::DatasetId::Cora);
    EXPECT_EQ(buffalo::tools::datasetIdFromName("papers"),
              buffalo::graph::DatasetId::Papers);
}

TEST(CliCommonTest, RejectsUnknownDatasetNames)
{
    EXPECT_THROW(buffalo::tools::datasetIdFromName("imagenet"),
                 buffalo::InvalidArgument);
    EXPECT_THROW(buffalo::tools::datasetIdFromName(""),
                 buffalo::InvalidArgument);
}

TEST(CliCommonTest, CacheFlagDefaultsMatchDocumentedValues)
{
    const Flags flags = makeFlags({});
    const CacheCliOptions cache = parseCacheFlags(flags);
    EXPECT_EQ(cache.capacity_bytes, 0u);
    EXPECT_EQ(cache.policy, buffalo::train::CachePolicyKind::Degree);
    EXPECT_EQ(cache.pinned_hot_nodes, 0u);
    EXPECT_EQ(cache.presample_batches, 8);
}

TEST(CliCommonTest, DecodesEveryCachePolicyName)
{
    EXPECT_EQ(parseCacheFlags(makeFlags({"--cache-policy", "lru"}))
                  .policy,
              buffalo::train::CachePolicyKind::LruOnly);
    EXPECT_EQ(
        parseCacheFlags(makeFlags({"--cache-policy", "degree"}))
            .policy,
        buffalo::train::CachePolicyKind::Degree);
    EXPECT_EQ(
        parseCacheFlags(makeFlags({"--cache-policy", "presample"}))
            .policy,
        buffalo::train::CachePolicyKind::PresampleFrequency);
}

TEST(CliCommonTest, RejectsUnknownCachePolicyNames)
{
    EXPECT_THROW(
        parseCacheFlags(makeFlags({"--cache-policy", "belady"})),
        buffalo::InvalidArgument);
    EXPECT_THROW(
        parseCacheFlags(makeFlags({"--cache-policy", "LRU"})),
        buffalo::InvalidArgument);
    EXPECT_THROW(parseCacheFlags(makeFlags({"--cache-policy", ""})),
                 buffalo::InvalidArgument);
}

TEST(CliCommonTest, RejectsNegativePresampleBatches)
{
    EXPECT_THROW(
        parseCacheFlags(makeFlags({"--presample-batches", "-1"})),
        buffalo::InvalidArgument);
    EXPECT_EQ(
        parseCacheFlags(makeFlags({"--presample-batches", "0"}))
            .presample_batches,
        0);
    EXPECT_EQ(
        parseCacheFlags(makeFlags({"--presample-batches", "32"}))
            .presample_batches,
        32);
}

TEST(CliCommonTest, ConvertsCacheCapacityFromMib)
{
    EXPECT_EQ(
        parseCacheFlags(makeFlags({"--feature-cache-mb", "1"}))
            .capacity_bytes,
        1ull << 20);
    EXPECT_EQ(
        parseCacheFlags(makeFlags({"--feature-cache-mb", "256"}))
            .capacity_bytes,
        256ull << 20);
}

TEST(CliCommonTest, TrainAndServeDecodeCacheFlagsIdentically)
{
    // Both CLIs hand the same argv tail to the same parser; a flag
    // vector must mean the same configuration regardless of which
    // tool received it.
    const std::vector<std::string> args = {
        "--feature-cache-mb", "64",       "--cache-policy",
        "presample",          "--pinned-hot", "128",
        "--presample-batches", "4"};
    const CacheCliOptions from_train =
        parseCacheFlags(makeFlags(args));
    const CacheCliOptions from_serve =
        parseCacheFlags(makeFlags(args));
    EXPECT_EQ(from_train.capacity_bytes, from_serve.capacity_bytes);
    EXPECT_EQ(from_train.policy, from_serve.policy);
    EXPECT_EQ(from_train.pinned_hot_nodes,
              from_serve.pinned_hot_nodes);
    EXPECT_EQ(from_train.presample_batches,
              from_serve.presample_batches);
    EXPECT_EQ(from_train.capacity_bytes, 64ull << 20);
    EXPECT_EQ(from_train.policy,
              buffalo::train::CachePolicyKind::PresampleFrequency);
    EXPECT_EQ(from_train.pinned_hot_nodes, 128u);
    EXPECT_EQ(from_train.presample_batches, 4);
}

TEST(CliCommonTest, CacheFlagNamesCoverEveryConsumedFlag)
{
    // checkKnown() in the CLIs is seeded from cacheFlagNames(); a
    // flag parseCacheFlags consumes but the list omits would be
    // rejected as "unknown" by both tools.
    const auto &names = buffalo::tools::cacheFlagNames();
    for (const char *flag : {"feature-cache-mb", "cache-policy",
                             "pinned-hot", "presample-batches"})
        EXPECT_NE(std::find(names.begin(), names.end(), flag),
                  names.end())
            << flag;
}

TEST(CliCommonTest, KernelFlagDefaultsMatchKernelConfig)
{
    const kernels::KernelConfig defaults;
    const kernels::KernelConfig cfg = parseKernelConfig(makeFlags({}));
    EXPECT_EQ(cfg.threads, defaults.threads);
    EXPECT_EQ(cfg.tile_n, defaults.tile_n);
    EXPECT_EQ(cfg.tile_k, defaults.tile_k);
    EXPECT_EQ(cfg.simd, kernels::SimdMode::Auto);
}

TEST(CliCommonTest, ParsesKernelThreadsAndTiles)
{
    const kernels::KernelConfig cfg = parseKernelConfig(
        makeFlags({"--kernel-threads", "4", "--kernel-tile-n", "32",
                   "--kernel-tile-k", "256"}));
    EXPECT_EQ(cfg.threads, 4u);
    EXPECT_EQ(cfg.tile_n, 32u);
    EXPECT_EQ(cfg.tile_k, 256u);
}

TEST(CliCommonTest, RejectsOutOfRangeKernelFlags)
{
    using buffalo::InvalidArgument;
    EXPECT_THROW(
        parseKernelConfig(makeFlags({"--kernel-threads", "-1"})),
        InvalidArgument);
    EXPECT_THROW(
        parseKernelConfig(makeFlags({"--kernel-tile-n", "0"})),
        InvalidArgument);
    EXPECT_THROW(
        parseKernelConfig(makeFlags({"--kernel-tile-n", "4097"})),
        InvalidArgument);
    EXPECT_THROW(
        parseKernelConfig(makeFlags({"--kernel-tile-k", "0"})),
        InvalidArgument);
    EXPECT_THROW(
        parseKernelConfig(makeFlags({"--kernel-tile-k", "4097"})),
        InvalidArgument);
    // Bounds are inclusive: the extremes themselves parse.
    EXPECT_EQ(parseKernelConfig(makeFlags({"--kernel-tile-n", "1"}))
                  .tile_n,
              1u);
    EXPECT_EQ(
        parseKernelConfig(makeFlags({"--kernel-tile-k", "4096"}))
            .tile_k,
        4096u);
}

TEST(CliCommonTest, ParsesEverySimdModeName)
{
    EXPECT_EQ(parseKernelConfig(makeFlags({"--kernel-simd", "auto"}))
                  .simd,
              kernels::SimdMode::Auto);
    EXPECT_EQ(parseKernelConfig(makeFlags({"--kernel-simd", "off"}))
                  .simd,
              kernels::SimdMode::Off);
    EXPECT_EQ(
        parseKernelConfig(makeFlags({"--kernel-simd", "on"})).simd,
        kernels::SimdMode::On);
}

TEST(CliCommonTest, RejectsUnknownSimdModeNames)
{
    using buffalo::InvalidArgument;
    EXPECT_THROW(
        parseKernelConfig(makeFlags({"--kernel-simd", "avx2"})),
        InvalidArgument);
    EXPECT_THROW(
        parseKernelConfig(makeFlags({"--kernel-simd", "ON"})),
        InvalidArgument);
    EXPECT_THROW(parseKernelConfig(makeFlags({"--kernel-simd", ""})),
                 InvalidArgument);
}

TEST(CliCommonTest, SimdOnIsRejectedAtSetConfigWhenUnavailable)
{
    // "on" always *parses*; applying it is what requires the wide
    // build + CPU. On a capable host the round-trip must succeed, and
    // the guard must reject it where the ISA is missing.
    const kernels::KernelConfig cfg =
        parseKernelConfig(makeFlags({"--kernel-simd", "on"}));
    const kernels::KernelConfig before = kernels::config();
    if (kernels::simdAvailable()) {
        kernels::setConfig(cfg);
        EXPECT_EQ(kernels::config().simd, kernels::SimdMode::On);
        kernels::setConfig(before);
    } else {
        EXPECT_THROW(kernels::setConfig(cfg),
                     buffalo::InvalidArgument);
    }
}

TEST(CliCommonTest, KernelFlagNamesCoverEveryConsumedFlag)
{
    const auto &names = buffalo::tools::kernelFlagNames();
    for (const char *flag : {"kernel-threads", "kernel-tile-n",
                             "kernel-tile-k", "kernel-simd"})
        EXPECT_NE(std::find(names.begin(), names.end(), flag),
                  names.end())
            << flag;
}

} // namespace
