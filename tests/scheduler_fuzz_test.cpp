/**
 * @file
 * Randomized property tests for the Buffalo scheduler: across random
 * graph families, batch sizes, aggregators, depths, and budgets, every
 * successful schedule must satisfy the core invariants —
 *   (1) groups cover all seeds disjointly,
 *   (2) every group estimate respects the constraint,
 *   (3) generated micro-batches are structurally valid and match
 *       their groups,
 *   (4) numeric execution of every micro-batch stays within budget
 *       (spot-checked on small cases).
 */
#include <gtest/gtest.h>

#include <set>

#include "core/micro_batch_generator.h"
#include "device/device.h"
#include "core/scheduler.h"
#include "graph/generators.h"
#include "nn/loss.h"
#include "nn/sage_model.h"
#include "tensor/ops.h"
#include "util/format.h"
#include "util/rng.h"

namespace buffalo::core {
namespace {

struct FuzzCase
{
    std::uint64_t seed;
};

class SchedulerFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(SchedulerFuzz, InvariantsHoldOnRandomInputs)
{
    util::Rng rng(GetParam().seed);

    // Random graph family and shape.
    graph::CsrGraph graph;
    switch (rng.nextBounded(4)) {
      case 0:
        graph = graph::generateBarabasiAlbert(
            300 + rng.nextBounded(900), 2 + rng.nextBounded(5), rng);
        break;
      case 1:
        graph = graph::generateWattsStrogatz(
            300 + rng.nextBounded(900), 2 + rng.nextBounded(3),
            rng.nextDouble() * 0.8, rng);
        break;
      case 2:
        graph = graph::generateCommunityPowerLaw(
            300 + rng.nextBounded(900), 16 + rng.nextBounded(32),
            0.2 + rng.nextDouble() * 0.4, 2 + rng.nextBounded(4),
            rng);
        break;
      default:
        graph = graph::generateErdosRenyi(
            300 + rng.nextBounded(900),
            0.005 + rng.nextDouble() * 0.02, rng);
        break;
    }

    // Random model configuration.
    nn::ModelConfig config;
    const nn::AggregatorKind kinds[] = {
        nn::AggregatorKind::Mean, nn::AggregatorKind::Pool,
        nn::AggregatorKind::Lstm};
    config.aggregator = kinds[rng.nextBounded(3)];
    config.num_layers = 1 + static_cast<int>(rng.nextBounded(3));
    config.feature_dim = 4 + static_cast<int>(rng.nextBounded(28));
    config.hidden_dim = 4 + static_cast<int>(rng.nextBounded(28));
    config.num_classes = 2 + static_cast<int>(rng.nextBounded(14));
    nn::MemoryModel model(config);

    // Random batch and sampling.
    std::vector<int> fanouts(config.num_layers);
    for (auto &fanout : fanouts)
        fanout = 2 + static_cast<int>(rng.nextBounded(12));
    const std::size_t num_seeds = 16 + rng.nextBounded(200);
    auto picks =
        rng.sampleWithoutReplacement(graph.numNodes(), num_seeds);
    graph::NodeList seeds(picks.begin(), picks.end());
    sampling::NeighborSampler sampler(fanouts);
    auto sg = sampler.sample(graph, seeds, rng);

    // A budget somewhere between "needs heavy splitting" and "easy".
    core::SchedulerOptions options;
    options.mem_constraint =
        util::mib(2) + rng.nextBounded(util::mib(60));
    const double coefficient = rng.nextDouble() * 0.6;
    core::BuffaloScheduler scheduler(model, coefficient, options);

    ScheduleResult result;
    try {
        result = scheduler.schedule(sg);
    } catch (const InvalidArgument &) {
        return; // infeasible budget: a legal outcome
    }

    // (1) disjoint cover of all seeds.
    std::set<sampling::NodeId> seen;
    for (const auto &group : result.groups) {
        ASSERT_FALSE(group.buckets.empty());
        for (auto seed : group.outputSeeds()) {
            ASSERT_LT(seed, sg.numSeeds());
            ASSERT_TRUE(seen.insert(seed).second)
                << "seed in two groups";
        }
    }
    ASSERT_EQ(seen.size(), sg.numSeeds());

    // (2) every group estimate within the constraint.
    for (const auto &group : result.groups)
        ASSERT_LE(group.est_bytes, options.mem_constraint);

    // (3) structurally valid micro-batches matching their groups.
    MicroBatchGenerator generator;
    auto batches = generator.generate(sg, result.groups);
    ASSERT_EQ(batches.size(), result.groups.size());
    for (std::size_t i = 0; i < batches.size(); ++i) {
        batches[i].validateChain();
        ASSERT_EQ(batches[i].numLayers(), config.num_layers);
        ASSERT_EQ(batches[i].outputNodes().size(),
                  result.groups[i].outputCount());
    }

    // (4) numeric spot check on small cases: real training of the
    // heaviest micro-batch stays within ~the constraint (safety
    // factor + estimator tolerance allow modest overshoot; the hard
    // guarantee is enforced by the trainer's OOM-retry loop).
    if (sg.nodes().size() < 4000 && config.num_layers <= 2) {
        std::size_t heaviest = 0;
        for (std::size_t i = 1; i < result.groups.size(); ++i)
            if (result.groups[i].est_bytes >
                result.groups[heaviest].est_bytes)
                heaviest = i;
        const auto &mb = batches[heaviest];

        nn::SageModel sage(config, 5);
        nn::Tensor feats =
            nn::Tensor::zeros(mb.inputNodes().size(),
                              config.feature_dim);
        tensor::fillUniform(feats, 1.0f, rng);
        device::Device probe("probe", util::gib(8));
        probe.allocator().resetPeak();
        // Track activations only (weights live off-device here).
        nn::SageModel::ForwardCache cache;
        nn::Tensor feats_dev = feats.clone(&probe.allocator());
        nn::Tensor logits =
            sage.forward(mb, feats_dev, cache, &probe.allocator());
        std::vector<std::int32_t> labels(mb.outputNodes().size(), 0);
        auto loss = nn::softmaxCrossEntropy(logits, labels, 0,
                                            &probe.allocator());
        sage.backward(cache, loss.grad_logits, &probe.allocator());
        EXPECT_LT(probe.allocator().peakBytes(),
                  2 * options.mem_constraint)
            << "heaviest micro-batch wildly exceeded its estimate";
    }
}

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    for (std::uint64_t seed = 1; seed <= 24; ++seed)
        cases.push_back({seed * 7919});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Random, SchedulerFuzz, ::testing::ValuesIn(fuzzCases()),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        return "seed_" + std::to_string(info.param.seed);
    });

} // namespace
} // namespace buffalo::core
