/**
 * @file
 * Tests for the Buffalo Scheduler (Algorithm 3): constraint
 * satisfaction, seed coverage, explosion splitting, K growth as the
 * budget shrinks, and micro-batch generation.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"
#include "graph/datasets.h"
#include "util/format.h"
#include "util/rng.h"

namespace buffalo::core {
namespace {

struct SchedSetup
{
    graph::Dataset data;
    SampledSubgraph sg;
    nn::ModelConfig config;
    double coefficient;
};

SchedSetup
makeSetup(std::size_t num_seeds = 192,
          nn::AggregatorKind kind = nn::AggregatorKind::Lstm)
{
    SchedSetup setup{graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.1),
                {},
                {},
                0.0};
    setup.coefficient = setup.data.spec().paper_avg_coefficient;
    util::Rng rng(3);
    sampling::NeighborSampler sampler({10, 10});
    graph::NodeList seeds(
        setup.data.trainNodes().begin(),
        setup.data.trainNodes().begin() +
            std::min(num_seeds, setup.data.trainNodes().size()));
    setup.sg = sampler.sample(setup.data.graph(), seeds, rng);

    setup.config.aggregator = kind;
    setup.config.num_layers = 2;
    setup.config.feature_dim = setup.data.featureDim();
    setup.config.hidden_dim = 32;
    setup.config.num_classes = setup.data.numClasses();
    return setup;
}

ScheduleResult
scheduleWith(const SchedSetup &setup, std::uint64_t budget,
             SchedulerOptions options = {})
{
    nn::MemoryModel model(setup.config);
    options.mem_constraint = budget;
    BuffaloScheduler scheduler(model, setup.coefficient, options);
    return scheduler.schedule(setup.sg);
}

/** Redundancy-aware estimate of the whole batch as one group. */
std::uint64_t
wholeBatchEstimate(const SchedSetup &setup)
{
    auto result = scheduleWith(setup, util::gib(1024));
    std::uint64_t total = 0;
    for (const auto &group : result.groups)
        total += group.est_bytes;
    return total;
}

TEST(Scheduler, LargeBudgetSingleGroup)
{
    SchedSetup setup = makeSetup();
    auto result = scheduleWith(setup, util::gib(64));
    EXPECT_EQ(result.num_groups, 1);
    EXPECT_TRUE(result.single_group);
}

TEST(Scheduler, GroupsCoverAllSeedsDisjointly)
{
    SchedSetup setup = makeSetup();
    auto result = scheduleWith(setup, util::mib(64));
    std::set<sampling::NodeId> seen;
    for (const auto &group : result.groups) {
        for (auto seed : group.outputSeeds()) {
            ASSERT_LT(seed, setup.sg.numSeeds());
            EXPECT_TRUE(seen.insert(seed).second)
                << "seed assigned to two groups";
        }
    }
    EXPECT_EQ(seen.size(), setup.sg.numSeeds());
}

TEST(Scheduler, EveryGroupRespectsConstraint)
{
    SchedSetup setup = makeSetup();
    const std::uint64_t budget = wholeBatchEstimate(setup) / 3;
    auto result = scheduleWith(setup, budget);
    EXPECT_GT(result.num_groups, 1);
    for (const auto &group : result.groups)
        EXPECT_LE(group.est_bytes, budget);
}

TEST(Scheduler, KGrowsAsBudgetShrinks)
{
    SchedSetup setup = makeSetup();
    const std::uint64_t whole = wholeBatchEstimate(setup);
    int previous = 1;
    for (std::uint64_t budget :
         {whole * 2, whole / 2, whole / 4, whole / 8}) {
        auto result = scheduleWith(setup, budget);
        EXPECT_GE(result.num_groups, previous)
            << "budget " << util::formatBytes(budget);
        previous = result.num_groups;
    }
    EXPECT_GT(previous, 1);
}

TEST(Scheduler, DetectsAndSplitsExplosion)
{
    SchedSetup setup = makeSetup(256);
    // Power-law arxiv-sim with fanout 10 explodes the degree-10
    // bucket; a tight budget forces a split.
    auto result = scheduleWith(setup, wholeBatchEstimate(setup) / 4);
    EXPECT_TRUE(result.explosion_detected);
    EXPECT_GT(result.num_groups, 1);

    // The cut-off bucket's members must now be spread across groups.
    const auto &top =
        setup.sg.layerAdjacency(setup.sg.numLayers() - 1);
    std::set<int> groups_with_cutoff;
    for (std::size_t g = 0; g < result.groups.size(); ++g) {
        for (const auto &info : result.groups[g].buckets) {
            if (info.bucket.degree == 10)
                groups_with_cutoff.insert(static_cast<int>(g));
        }
    }
    (void)top;
    EXPECT_GT(groups_with_cutoff.size(), 1u);
}

/** Estimate of the largest single bucket (the explosion bucket). */
std::uint64_t
largestBucketEstimate(const SchedSetup &setup)
{
    nn::MemoryModel model(setup.config);
    BucketMemEstimator estimator(model, setup.sg);
    std::uint64_t largest = 0;
    for (const auto &info :
         estimator.estimate(sampling::bucketizeSeeds(setup.sg)))
        largest = std::max(largest, info.est_bytes);
    return largest;
}

TEST(Scheduler, SplitDisabledSchedulesAboveAtomicBucket)
{
    // With splitting off, the explosion bucket is atomic; any budget
    // above it still schedules (just with coarser groups).
    SchedSetup setup = makeSetup(128);
    SchedulerOptions options;
    options.enable_split = false;
    const std::uint64_t budget = largestBucketEstimate(setup) * 2;
    auto result = scheduleWith(setup, budget, options);
    EXPECT_FALSE(result.explosion_detected);
    std::set<sampling::NodeId> seen;
    for (const auto &group : result.groups)
        for (auto seed : group.outputSeeds())
            seen.insert(seed);
    EXPECT_EQ(seen.size(), setup.sg.numSeeds());
}

TEST(Scheduler, SplittingBreaksTheAtomicBucketWall)
{
    // The paper's core claim (§IV-A): once the budget drops below the
    // explosion bucket's own footprint, no amount of grouping helps —
    // only splitting the bucket does.
    SchedSetup setup = makeSetup(256);
    const std::uint64_t budget =
        largestBucketEstimate(setup) * 7 / 10;

    SchedulerOptions no_split;
    no_split.enable_split = false;
    no_split.max_groups = 64;
    EXPECT_THROW(scheduleWith(setup, budget, no_split),
                 InvalidArgument);

    SchedulerOptions with_split;
    auto result = scheduleWith(setup, budget, with_split);
    EXPECT_TRUE(result.explosion_detected);
    EXPECT_GT(result.num_groups, 1);
}

TEST(Scheduler, ImpossibleBudgetThrows)
{
    SchedSetup setup = makeSetup(64);
    SchedulerOptions options;
    options.max_groups = 4;
    EXPECT_THROW(scheduleWith(setup, util::mib(1), options),
                 InvalidArgument);
}

TEST(Scheduler, ReservedBytesTightenBudget)
{
    SchedSetup setup = makeSetup();
    const std::uint64_t whole = wholeBatchEstimate(setup);
    SchedulerOptions plain;
    auto base = scheduleWith(setup, whole * 2, plain);
    SchedulerOptions reserved;
    reserved.reserved_bytes = whole * 2 - whole / 2;
    auto tight = scheduleWith(setup, whole * 2, reserved);
    EXPECT_GE(tight.num_groups, base.num_groups);
}

TEST(Scheduler, RejectsBadOptions)
{
    SchedSetup setup = makeSetup(64);
    nn::MemoryModel model(setup.config);
    SchedulerOptions options; // mem_constraint = 0
    EXPECT_THROW(BuffaloScheduler(model, 0.2, options),
                 InvalidArgument);
}

TEST(MicroBatchGenerator, GroupsBecomeValidMicroBatches)
{
    SchedSetup setup = makeSetup();
    auto result = scheduleWith(setup, wholeBatchEstimate(setup) / 3);
    MicroBatchGenerator generator;
    auto batches = generator.generate(setup.sg, result.groups);
    ASSERT_EQ(batches.size(), result.groups.size());

    std::set<graph::NodeId> outputs;
    for (std::size_t i = 0; i < batches.size(); ++i) {
        batches[i].validateChain();
        EXPECT_EQ(batches[i].numLayers(), 2);
        EXPECT_EQ(batches[i].outputNodes().size(),
                  result.groups[i].outputCount());
        for (auto node : batches[i].outputNodes())
            EXPECT_TRUE(outputs.insert(node).second);
    }
    EXPECT_EQ(outputs.size(), setup.sg.numSeeds());
}

TEST(MicroBatchGenerator, RedundancyExistsAcrossMicroBatches)
{
    // The non-linear memory phenomenon of §IV-D: micro-batches share
    // input nodes, so the sum of inputs exceeds the whole batch's.
    SchedSetup setup = makeSetup();
    auto result = scheduleWith(setup, wholeBatchEstimate(setup) / 4);
    ASSERT_GT(result.num_groups, 1);
    MicroBatchGenerator generator;
    auto batches = generator.generate(setup.sg, result.groups);

    std::size_t summed = 0;
    std::set<graph::NodeId> unique_inputs;
    for (const auto &mb : batches) {
        summed += mb.inputNodes().size();
        unique_inputs.insert(mb.inputNodes().begin(),
                             mb.inputNodes().end());
    }
    EXPECT_GT(summed, unique_inputs.size());
}

} // namespace
} // namespace buffalo::core
