/**
 * @file
 * Wall-clock-sensitive performance comparisons. These tests assert on
 * measured host time, which sanitizer instrumentation (TSan/ASan)
 * skews enough to flake, so the whole binary carries the CTest `perf`
 * label and tools/ci.sh excludes it from sanitizer legs with
 * `ctest -LE perf`.
 */
#include <gtest/gtest.h>

#include "train/experiment.h"
#include "train/trainer.h"
#include "util/format.h"

namespace buffalo::train {
namespace {

graph::Dataset &
arxiv()
{
    static graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.08);
    return data;
}

TrainerOptions
baseOptions(const graph::Dataset &data,
            nn::AggregatorKind kind = nn::AggregatorKind::Mean)
{
    TrainerOptions options;
    options.model.aggregator = kind;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    return options;
}

NodeList
seedsOf(const graph::Dataset &data, std::size_t count)
{
    return NodeList(data.trainNodes().begin(),
                    data.trainNodes().begin() +
                        std::min(count, data.trainNodes().size()));
}

/** Measures the whole-batch peak for @p options on huge memory. */
std::uint64_t
measureWholeBatchPeak(const TrainerOptions &options,
                      const NodeList &seeds, std::uint64_t rng_seed)
{
    device::Device dev("probe", util::gib(64));
    WholeBatchTrainer trainer(options, dev);
    util::Rng rng(rng_seed);
    return trainer.trainIteration(arxiv(), seeds, rng)
        .peak_device_bytes;
}

TEST(MultiGpu, TwoDevicesSlightlyFaster)
{
    auto &data = arxiv();
    TrainerOptions options =
        baseOptions(data, nn::AggregatorKind::Lstm);
    const NodeList seeds = seedsOf(data, 256);
    const std::uint64_t budget =
        measureWholeBatchPeak(options, seeds, 10) / 2;
    options.mode = ExecutionMode::CostModel;

    device::DeviceGroup one(1, budget);
    device::DeviceGroup two(2, budget);
    util::Rng rng1(10), rng2(10);
    auto single = runBuffaloDataParallel(data, options, one, seeds,
                                         rng1);
    auto dual =
        runBuffaloDataParallel(data, options, two, seeds, rng2);

    EXPECT_GT(single.num_micro_batches, 1);
    // Two devices shave device time but host time is unchanged
    // (paper §V-G: only a 3-5% end-to-end gain).
    EXPECT_LE(dual.device_seconds, single.device_seconds);
    EXPECT_LT(dual.iteration_seconds, single.iteration_seconds);
    EXPECT_GT(dual.allreduce_seconds, 0.0);
}

} // namespace
} // namespace buffalo::train
