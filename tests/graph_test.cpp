/**
 * @file
 * Tests for the graph substrate: CSR, COO builder, statistics, and
 * induced subgraphs.
 */
#include <gtest/gtest.h>

#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/stats.h"
#include "graph/subgraph.h"
#include "util/errors.h"

namespace buffalo::graph {
namespace {

/** Triangle 0-1-2 plus pendant 3 attached to 2, undirected. */
CsrGraph
triangleWithTail()
{
    CooBuilder builder(4);
    builder.addUndirectedEdge(0, 1);
    builder.addUndirectedEdge(1, 2);
    builder.addUndirectedEdge(0, 2);
    builder.addUndirectedEdge(2, 3);
    return builder.toCsr();
}

TEST(CsrGraph, EmptyGraph)
{
    CsrGraph g;
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_EQ(g.maxDegree(), 0u);
}

TEST(CsrGraph, BasicAccessors)
{
    CsrGraph g = triangleWithTail();
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 8u); // 4 undirected edges
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(2), 3u);
    EXPECT_EQ(g.degree(3), 1u);
    EXPECT_EQ(g.maxDegree(), 3u);
    EXPECT_TRUE(g.rowsSorted());
}

TEST(CsrGraph, HasEdge)
{
    CsrGraph g = triangleWithTail();
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_TRUE(g.hasEdge(3, 2));
    EXPECT_FALSE(g.hasEdge(3, 0));
    EXPECT_FALSE(g.hasEdge(0, 3));
}

TEST(CsrGraph, ReversedPreservesEdgeCount)
{
    // Directed chain 0 -> 1 -> 2 (in-CSR: row is in-neighbors).
    CooBuilder builder(3);
    builder.addEdge(0, 1);
    builder.addEdge(1, 2);
    CsrGraph g = builder.toCsr();
    EXPECT_EQ(g.degree(1), 1u); // in-edge from 0
    EXPECT_EQ(g.degree(0), 0u);

    CsrGraph rev = g.reversed();
    EXPECT_EQ(rev.numEdges(), g.numEdges());
    EXPECT_EQ(rev.degree(0), 1u);
    EXPECT_EQ(rev.degree(2), 0u);
    // Reversing twice gives back the original degrees.
    CsrGraph back = rev.reversed();
    for (NodeId u = 0; u < g.numNodes(); ++u)
        EXPECT_EQ(back.degree(u), g.degree(u));
}

TEST(CsrGraph, CountZeroDegreeNodes)
{
    CooBuilder builder(5);
    builder.addEdge(0, 1);
    CsrGraph g = builder.toCsr();
    // Only node 1 has an in-edge.
    EXPECT_EQ(g.countZeroDegreeNodes(), 4u);
}

TEST(CsrGraph, RejectsBadOffsets)
{
    EXPECT_THROW(CsrGraph({0, 2, 1}, {0, 0}), InvalidArgument);
    EXPECT_THROW(CsrGraph({0, 1}, {}), InvalidArgument);
    EXPECT_THROW(CsrGraph({0, 1}, {5}), InvalidArgument); // id range
}

TEST(CsrGraph, MemoryBytesPositive)
{
    CsrGraph g = triangleWithTail();
    EXPECT_GT(g.memoryBytes(), 0u);
}

TEST(CooBuilder, DeduplicatesAndDropsSelfLoops)
{
    CooBuilder builder(3);
    builder.addEdge(0, 1);
    builder.addEdge(0, 1); // duplicate
    builder.addEdge(2, 2); // self loop
    CsrGraph g = builder.toCsr(/*dedup=*/true, /*drop_self_loops=*/true);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(CooBuilder, KeepsDuplicatesWhenAsked)
{
    CooBuilder builder(3);
    builder.addEdge(0, 1);
    builder.addEdge(0, 1);
    CsrGraph g = builder.toCsr(/*dedup=*/false,
                               /*drop_self_loops=*/false);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(CooBuilder, RejectsOutOfRange)
{
    CooBuilder builder(2);
    EXPECT_THROW(builder.addEdge(0, 2), InvalidArgument);
}

TEST(Stats, AverageDegree)
{
    CsrGraph g = triangleWithTail();
    EXPECT_DOUBLE_EQ(averageDegree(g), 2.0);
}

TEST(Stats, ClusteringCoefficientTriangle)
{
    CooBuilder builder(3);
    builder.addUndirectedEdge(0, 1);
    builder.addUndirectedEdge(1, 2);
    builder.addUndirectedEdge(0, 2);
    CsrGraph g = builder.toCsr();
    EXPECT_DOUBLE_EQ(localClusteringCoefficient(g, 0), 1.0);
    EXPECT_DOUBLE_EQ(averageClusteringCoefficient(g), 1.0);
}

TEST(Stats, ClusteringCoefficientStarIsZero)
{
    CooBuilder builder(5);
    for (NodeId leaf = 1; leaf < 5; ++leaf)
        builder.addUndirectedEdge(0, leaf);
    CsrGraph g = builder.toCsr();
    EXPECT_DOUBLE_EQ(averageClusteringCoefficient(g), 0.0);
}

TEST(Stats, ClusteringCoefficientMixed)
{
    CsrGraph g = triangleWithTail();
    // Node 2 has neighbors {0, 1, 3}; only (0,1) connected -> 1/3.
    EXPECT_NEAR(localClusteringCoefficient(g, 2), 1.0 / 3.0, 1e-12);
    // Node 3 has a single neighbor -> 0.
    EXPECT_DOUBLE_EQ(localClusteringCoefficient(g, 3), 0.0);
}

TEST(Stats, SampledClusteringApproximatesExact)
{
    CooBuilder builder(40);
    // Ring of triangles: clustering strictly between 0 and 1.
    for (NodeId i = 0; i + 2 < 40; i += 2) {
        builder.addUndirectedEdge(i, i + 1);
        builder.addUndirectedEdge(i + 1, i + 2);
        builder.addUndirectedEdge(i, i + 2);
    }
    CsrGraph g = builder.toCsr();
    const double exact = averageClusteringCoefficient(g);
    util::Rng rng(4);
    const double sampled = sampledClusteringCoefficient(g, 30, rng);
    EXPECT_NEAR(sampled, exact, 0.25);
}

TEST(Subgraph, InducedKeepsInternalEdges)
{
    CsrGraph g = triangleWithTail();
    Subgraph sub = inducedSubgraph(g, {0, 1, 2});
    EXPECT_EQ(sub.graph.numNodes(), 3u);
    EXPECT_EQ(sub.graph.numEdges(), 6u); // triangle only
    EXPECT_EQ(sub.parent(sub.local(2)), 2u);
}

TEST(Subgraph, DropsBoundaryEdges)
{
    CsrGraph g = triangleWithTail();
    Subgraph sub = inducedSubgraph(g, {2, 3});
    EXPECT_EQ(sub.graph.numNodes(), 2u);
    EXPECT_EQ(sub.graph.numEdges(), 2u); // only 2-3
}

TEST(Subgraph, RejectsDuplicates)
{
    CsrGraph g = triangleWithTail();
    EXPECT_THROW(inducedSubgraph(g, {1, 1}), InvalidArgument);
}

TEST(Subgraph, LocalOfMissingNodeThrows)
{
    CsrGraph g = triangleWithTail();
    Subgraph sub = inducedSubgraph(g, {0, 1});
    EXPECT_THROW(sub.local(3), InvalidArgument);
}

} // namespace
} // namespace buffalo::graph
