/**
 * @file
 * Tests for the simulated accelerator: capacity enforcement, OOM
 * semantics, peak tracking, and the timing model.
 */
#include <gtest/gtest.h>

#include "device/device.h"
#include "tensor/tensor.h"
#include "util/format.h"

namespace buffalo::device {
namespace {

TEST(DeviceAllocator, TracksUsageAndPeak)
{
    DeviceAllocator alloc(1000);
    alloc.onAllocate(400);
    alloc.onAllocate(300);
    EXPECT_EQ(alloc.bytesInUse(), 700u);
    EXPECT_EQ(alloc.peakBytes(), 700u);
    alloc.onFree(300);
    EXPECT_EQ(alloc.bytesInUse(), 400u);
    EXPECT_EQ(alloc.peakBytes(), 700u);
    alloc.resetPeak();
    EXPECT_EQ(alloc.peakBytes(), 400u);
}

TEST(DeviceAllocator, ThrowsDeviceOomAtCapacity)
{
    DeviceAllocator alloc(100);
    alloc.onAllocate(60);
    EXPECT_THROW(alloc.onAllocate(50), DeviceOom);
    // Failed allocation must not change usage.
    EXPECT_EQ(alloc.bytesInUse(), 60u);
    EXPECT_EQ(alloc.oomCount(), 1u);
    // Exactly filling is allowed.
    EXPECT_NO_THROW(alloc.onAllocate(40));
}

TEST(DeviceAllocator, OomCarriesContext)
{
    DeviceAllocator alloc(100);
    alloc.onAllocate(80);
    try {
        alloc.onAllocate(30);
        FAIL() << "expected DeviceOom";
    } catch (const DeviceOom &oom) {
        EXPECT_EQ(oom.requested(), 30u);
        EXPECT_EQ(oom.inUse(), 80u);
        EXPECT_EQ(oom.capacity(), 100u);
    }
}

TEST(DeviceAllocator, SetCapacityValidates)
{
    DeviceAllocator alloc(100);
    alloc.onAllocate(50);
    EXPECT_THROW(alloc.setCapacity(40), InvalidArgument);
    alloc.setCapacity(200);
    EXPECT_NO_THROW(alloc.onAllocate(120));
}

TEST(DeviceAllocator, IntegratesWithTensor)
{
    DeviceAllocator alloc(1024);
    {
        auto t = tensor::Tensor::zeros(8, 8, &alloc); // 256 bytes
        EXPECT_EQ(alloc.bytesInUse(), 256u);
        EXPECT_THROW(tensor::Tensor::zeros(16, 16, &alloc), DeviceOom);
    }
    EXPECT_EQ(alloc.bytesInUse(), 0u);
}

TEST(CostModel, KernelTimeScalesWithFlops)
{
    CostModel model;
    const double small = model.kernelSeconds(1e9);
    const double large = model.kernelSeconds(1e12);
    EXPECT_GT(large, small);
    // Launch overhead dominates tiny kernels.
    EXPECT_NEAR(model.kernelSeconds(0.0),
                model.params().kernel_launch_seconds, 1e-12);
}

TEST(CostModel, KernelCountAddsLaunchOverhead)
{
    CostModel model;
    const double one = model.kernelsSeconds(1e9, 1);
    const double many = model.kernelsSeconds(1e9, 1000);
    EXPECT_NEAR(many - one,
                999 * model.params().kernel_launch_seconds, 1e-9);
}

TEST(CostModel, TransferBandwidth)
{
    CostModel model;
    const double t = model.transferSeconds(util::gib(12));
    // ~1 second on a 12 GB/s link.
    EXPECT_NEAR(t, 1.07, 0.1);
}

TEST(CostModel, AllReduceScaling)
{
    CostModel model;
    EXPECT_DOUBLE_EQ(model.allReduceSeconds(1 << 20, 1), 0.0);
    const double two = model.allReduceSeconds(1 << 26, 2);
    const double four = model.allReduceSeconds(1 << 26, 4);
    EXPECT_GT(two, 0.0);
    EXPECT_GT(four, two); // 2(n-1)/n grows with n
}

TEST(Device, ClocksAccumulateAndReset)
{
    Device dev("gpu:0", util::gib(1));
    dev.chargeCompute(1e12);
    dev.chargeTransfer(1 << 30);
    EXPECT_GT(dev.computeSeconds(), 0.0);
    EXPECT_GT(dev.transferSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(dev.totalSeconds(),
                     dev.computeSeconds() + dev.transferSeconds());
    dev.resetClocks();
    EXPECT_DOUBLE_EQ(dev.totalSeconds(), 0.0);
}

TEST(Device, CustomCostModel)
{
    CostModelParams params;
    params.flops_per_second = 1e12;
    params.gnn_efficiency = 1.0;
    params.kernel_launch_seconds = 0.0;
    Device dev("gpu:0", 1024, params);
    dev.chargeCompute(1e12);
    EXPECT_NEAR(dev.computeSeconds(), 1.0, 1e-9);
}

TEST(DeviceGroup, UniformDevicesAndAllReduce)
{
    DeviceGroup group(2, util::gib(2));
    EXPECT_EQ(group.size(), 2);
    EXPECT_EQ(group.device(0).name(), "gpu:0");
    EXPECT_EQ(group.device(1).name(), "gpu:1");
    EXPECT_GT(group.allReduceSeconds(1 << 24), 0.0);
}

TEST(DeviceGroup, RejectsZeroDevices)
{
    EXPECT_THROW(DeviceGroup(0, 1024), InvalidArgument);
}

} // namespace
} // namespace buffalo::device
