/**
 * @file
 * End-to-end tests for tools/buffalo_lint: seeded violations in
 * fixture sources must be caught with the right rule tag, clean
 * fixtures must pass, and the repository itself must lint clean.
 *
 * The linter binary path arrives via the BUFFALO_LINT_BIN compile
 * definition and the repo root via BUFFALO_REPO_ROOT (both set in
 * tests/CMakeLists.txt), so the tests exercise the real executable
 * rather than re-implementing its rules.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult
{
    int exit_code = -1;
    std::string output;
};

RunResult
runLint(const std::string &args)
{
    const std::string command =
        std::string(BUFFALO_LINT_BIN) + " " + args + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << command;
    RunResult result;
    if (pipe == nullptr)
        return result;
    char buffer[4096];
    while (std::fgets(buffer, sizeof buffer, pipe) != nullptr)
        result.output += buffer;
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

fs::path
fixtureDir(const std::string &name)
{
    const fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

void
writeFile(const fs::path &path, const std::string &text)
{
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << text;
}

TEST(LintTest, FlagsMissingGuardedByAnnotation)
{
    const fs::path dir = fixtureDir("lint_guarded_by");
    const fs::path header = dir / "bad_queue.h";
    writeFile(header,
              "#pragma once\n"
              "#include \"util/thread_annotations.h\"\n"
              "namespace fixture {\n"
              "class BadQueue {\n"
              "  public:\n"
              "    void push(int value);\n"
              "  private:\n"
              "    util::Mutex mutex_;\n"
              "    int depth_ = 0;\n"
              "};\n"
              "} // namespace fixture\n");
    const RunResult result = runLint(header.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[guarded-by]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("depth_"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("bad_queue.h:9"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsAnnotatedAndWaivedMembers)
{
    const fs::path dir = fixtureDir("lint_guarded_by_ok");
    const fs::path header = dir / "good_queue.h";
    writeFile(
        header,
        "#pragma once\n"
        "#include \"util/thread_annotations.h\"\n"
        "class GoodQueue {\n"
        "  private:\n"
        "    util::Mutex mutex_;\n"
        "    int depth_ BUFFALO_GUARDED_BY(mutex_) = 0;\n"
        "    // Immutable after construction.\n"
        "    int capacity_ = 0; "
        "// buffalo-lint: allow(guarded-by) set once in ctor\n"
        "    std::condition_variable not_empty_;\n"
        "    static constexpr int kLimit = 4;\n"
        "};\n");
    const RunResult result = runLint(header.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsRawMetricNameLiterals)
{
    const fs::path dir = fixtureDir("lint_obs_name");
    const fs::path source = dir / "rogue.cpp";
    writeFile(source,
              "#include \"obs/metrics.h\"\n"
              "void touch() {\n"
              "    buffalo::obs::metrics()"
              ".counter(\"rogue.metric\").add();\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[obs-name]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("rogue.cpp:3"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsRegistryConstantsAtCallSites)
{
    const fs::path dir = fixtureDir("lint_obs_name_ok");
    const fs::path source = dir / "fine.cpp";
    writeFile(source,
              "#include \"obs/metrics.h\"\n"
              "#include \"obs/names.h\"\n"
              "void touch() {\n"
              "    buffalo::obs::metrics()"
              ".counter(buffalo::obs::names::kCtrTrainEpochs).add();\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsRawEventNameLiterals)
{
    const fs::path dir = fixtureDir("lint_obs_event_name");
    const fs::path source = dir / "rogue_event.cpp";
    writeFile(source,
              "#include \"obs/event_log.h\"\n"
              "void touch() {\n"
              "    buffalo::obs::eventLog()"
              ".event(\"rogue.event\").field(\"k\", 1);\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[obs-name]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("rogue_event.cpp:3"),
              std::string::npos)
        << result.output;
}

TEST(LintTest, FlagsNakedAllocations)
{
    const fs::path dir = fixtureDir("lint_raw_alloc");
    const fs::path source = dir / "leaky.cpp";
    writeFile(source,
              "#include <cstdlib>\n"
              "float *makeBuffer(int n) {\n"
              "    float *raw = new float[16];\n"
              "    void *blob = std::malloc(64);\n"
              "    std::free(blob);\n"
              "    return raw;\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[raw-alloc]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("leaky.cpp:3"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("leaky.cpp:4"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("leaky.cpp:5"), std::string::npos)
        << result.output;
}

TEST(LintTest, IgnoresAllocationWordsInCommentsAndStrings)
{
    const fs::path dir = fixtureDir("lint_raw_alloc_ok");
    const fs::path source = dir / "chatty.cpp";
    writeFile(source,
              "// Counters are lock-free (see malloc notes).\n"
              "/* free (as in beer) new int[3] */\n"
              "const char *kDoc = \"call free(ptr) after use\";\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsHeaderHygieneViolations)
{
    const fs::path dir = fixtureDir("lint_header");
    const fs::path header = dir / "sloppy.h";
    writeFile(header,
              "#include \"../util/errors.h\"\n"
              "inline int answer() { return 42; }\n");
    const RunResult result = runLint(header.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("missing #pragma once"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("relative-up include"),
              std::string::npos)
        << result.output;
}

TEST(LintTest, FlagsUnregisteredCiExpectationNames)
{
    const fs::path root = fixtureDir("lint_ci_names");
    writeFile(root / "src" / "obs" / "names.h",
              "#pragma once\n"
              "namespace buffalo::obs::names {\n"
              "inline constexpr char kCtrTrainEpochs[] = "
              "\"train.epochs\";\n"
              "} // namespace buffalo::obs::names\n");
    writeFile(root / "tools" / "ci.sh",
              "#!/usr/bin/env bash\n"
              "obs_validate --expect-metrics "
              "train.epochs,ghost.metric\n");
    const RunResult result =
        runLint("--root " + root.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[ci-names]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("ghost.metric"), std::string::npos)
        << result.output;
    EXPECT_EQ(result.output.find("train.epochs"), std::string::npos)
        << result.output;
}

TEST(LintTest, CleanFixtureTreePasses)
{
    const fs::path root = fixtureDir("lint_clean_tree");
    writeFile(root / "src" / "obs" / "names.h",
              "#pragma once\n"
              "namespace buffalo::obs::names {\n"
              "inline constexpr char kCtrTrainEpochs[] = "
              "\"train.epochs\";\n"
              "} // namespace buffalo::obs::names\n");
    writeFile(root / "src" / "worker.h",
              "#pragma once\n"
              "#include \"util/thread_annotations.h\"\n"
              "class Worker {\n"
              "  private:\n"
              "    util::Mutex mutex_;\n"
              "    bool running_ BUFFALO_GUARDED_BY(mutex_) = false;\n"
              "};\n");
    writeFile(root / "tools" / "ci.sh",
              "#!/usr/bin/env bash\n"
              "obs_validate --expect-metrics @core\n");
    const RunResult result = runLint("--root " + root.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("clean"), std::string::npos)
        << result.output;
}

TEST(LintTest, RepositoryLintsClean)
{
    const RunResult result =
        runLint(std::string("--root ") + BUFFALO_REPO_ROOT);
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, MissingFileIsAUsageError)
{
    const RunResult result = runLint("/nonexistent/nope.cpp");
    EXPECT_EQ(result.exit_code, 2) << result.output;
}

} // namespace
