/**
 * @file
 * End-to-end tests for tools/buffalo_lint: seeded violations in
 * fixture sources must be caught with the right rule tag, clean
 * fixtures must pass, and the repository itself must lint clean.
 *
 * The linter binary path arrives via the BUFFALO_LINT_BIN compile
 * definition and the repo root via BUFFALO_REPO_ROOT (both set in
 * tests/CMakeLists.txt), so the tests exercise the real executable
 * rather than re-implementing its rules.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult
{
    int exit_code = -1;
    std::string output;
};

RunResult
runLint(const std::string &args)
{
    const std::string command =
        std::string(BUFFALO_LINT_BIN) + " " + args + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << command;
    RunResult result;
    if (pipe == nullptr)
        return result;
    char buffer[4096];
    while (std::fgets(buffer, sizeof buffer, pipe) != nullptr)
        result.output += buffer;
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

fs::path
fixtureDir(const std::string &name)
{
    const fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

void
writeFile(const fs::path &path, const std::string &text)
{
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << text;
}

TEST(LintTest, FlagsMissingGuardedByAnnotation)
{
    const fs::path dir = fixtureDir("lint_guarded_by");
    const fs::path header = dir / "bad_queue.h";
    writeFile(header,
              "#pragma once\n"
              "#include \"util/thread_annotations.h\"\n"
              "namespace fixture {\n"
              "class BadQueue {\n"
              "  public:\n"
              "    void push(int value);\n"
              "  private:\n"
              "    util::Mutex mutex_;\n"
              "    int depth_ = 0;\n"
              "};\n"
              "} // namespace fixture\n");
    const RunResult result = runLint(header.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[guarded-by]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("depth_"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("bad_queue.h:9"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsAnnotatedAndWaivedMembers)
{
    const fs::path dir = fixtureDir("lint_guarded_by_ok");
    const fs::path header = dir / "good_queue.h";
    writeFile(
        header,
        "#pragma once\n"
        "#include \"util/thread_annotations.h\"\n"
        "class GoodQueue {\n"
        "  private:\n"
        "    util::Mutex mutex_;\n"
        "    int depth_ BUFFALO_GUARDED_BY(mutex_) = 0;\n"
        "    // Immutable after construction.\n"
        "    int capacity_ = 0; "
        "// buffalo-lint: allow(guarded-by) set once in ctor\n"
        "    std::condition_variable not_empty_;\n"
        "    static constexpr int kLimit = 4;\n"
        "};\n");
    const RunResult result = runLint(header.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsRawMetricNameLiterals)
{
    const fs::path dir = fixtureDir("lint_obs_name");
    const fs::path source = dir / "rogue.cpp";
    writeFile(source,
              "#include \"obs/metrics.h\"\n"
              "void touch() {\n"
              "    buffalo::obs::metrics()"
              ".counter(\"rogue.metric\").add();\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[obs-name]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("rogue.cpp:3"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsRegistryConstantsAtCallSites)
{
    const fs::path dir = fixtureDir("lint_obs_name_ok");
    const fs::path source = dir / "fine.cpp";
    writeFile(source,
              "#include \"obs/metrics.h\"\n"
              "#include \"obs/names.h\"\n"
              "void touch() {\n"
              "    buffalo::obs::metrics()"
              ".counter(buffalo::obs::names::kCtrTrainEpochs).add();\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsRawEventNameLiterals)
{
    const fs::path dir = fixtureDir("lint_obs_event_name");
    const fs::path source = dir / "rogue_event.cpp";
    writeFile(source,
              "#include \"obs/event_log.h\"\n"
              "void touch() {\n"
              "    buffalo::obs::eventLog()"
              ".event(\"rogue.event\").field(\"k\", 1);\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[obs-name]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("rogue_event.cpp:3"),
              std::string::npos)
        << result.output;
}

TEST(LintTest, FlagsNakedAllocations)
{
    const fs::path dir = fixtureDir("lint_raw_alloc");
    const fs::path source = dir / "leaky.cpp";
    writeFile(source,
              "#include <cstdlib>\n"
              "float *makeBuffer(int n) {\n"
              "    float *raw = new float[16];\n"
              "    void *blob = std::malloc(64);\n"
              "    std::free(blob);\n"
              "    return raw;\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[raw-alloc]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("leaky.cpp:3"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("leaky.cpp:4"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("leaky.cpp:5"), std::string::npos)
        << result.output;
}

TEST(LintTest, IgnoresAllocationWordsInCommentsAndStrings)
{
    const fs::path dir = fixtureDir("lint_raw_alloc_ok");
    const fs::path source = dir / "chatty.cpp";
    writeFile(source,
              "// Counters are lock-free (see malloc notes).\n"
              "/* free (as in beer) new int[3] */\n"
              "const char *kDoc = \"call free(ptr) after use\";\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsHeaderHygieneViolations)
{
    const fs::path dir = fixtureDir("lint_header");
    const fs::path header = dir / "sloppy.h";
    writeFile(header,
              "#include \"../util/errors.h\"\n"
              "inline int answer() { return 42; }\n");
    const RunResult result = runLint(header.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("missing #pragma once"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("relative-up include"),
              std::string::npos)
        << result.output;
}

TEST(LintTest, FlagsUnregisteredCiExpectationNames)
{
    const fs::path root = fixtureDir("lint_ci_names");
    writeFile(root / "src" / "obs" / "names.h",
              "#pragma once\n"
              "namespace buffalo::obs::names {\n"
              "inline constexpr char kCtrTrainEpochs[] = "
              "\"train.epochs\";\n"
              "} // namespace buffalo::obs::names\n");
    writeFile(root / "tools" / "ci.sh",
              "#!/usr/bin/env bash\n"
              "obs_validate --expect-metrics "
              "train.epochs,ghost.metric\n");
    const RunResult result =
        runLint("--root " + root.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[ci-names]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("ghost.metric"), std::string::npos)
        << result.output;
    EXPECT_EQ(result.output.find("train.epochs"), std::string::npos)
        << result.output;
}

TEST(LintTest, CleanFixtureTreePasses)
{
    const fs::path root = fixtureDir("lint_clean_tree");
    writeFile(root / "src" / "obs" / "names.h",
              "#pragma once\n"
              "namespace buffalo::obs::names {\n"
              "inline constexpr char kCtrTrainEpochs[] = "
              "\"train.epochs\";\n"
              "} // namespace buffalo::obs::names\n");
    writeFile(root / "src" / "worker.h",
              "#pragma once\n"
              "#include \"util/thread_annotations.h\"\n"
              "class Worker {\n"
              "  private:\n"
              "    util::Mutex mutex_;\n"
              "    bool running_ BUFFALO_GUARDED_BY(mutex_) = false;\n"
              "};\n");
    writeFile(root / "tools" / "ci.sh",
              "#!/usr/bin/env bash\n"
              "obs_validate --expect-metrics @core\n");
    const RunResult result = runLint("--root " + root.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("clean"), std::string::npos)
        << result.output;
}

TEST(LintTest, RepositoryLintsClean)
{
    const RunResult result =
        runLint(std::string("--root ") + BUFFALO_REPO_ROOT);
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, MissingFileIsAUsageError)
{
    const RunResult result = runLint("/nonexistent/nope.cpp");
    EXPECT_EQ(result.exit_code, 2) << result.output;
}

// --- determinism rules ----------------------------------------------

TEST(LintTest, FlagsUnorderedContainerIteration)
{
    const fs::path dir = fixtureDir("lint_unordered_iter");
    const fs::path source = dir / "hot.cpp";
    writeFile(source,
              "#include <unordered_map>\n"
              "float sum(const std::unordered_map<int, float> &w) {\n"
              "    float total = 0.0f;\n"
              "    for (const auto &kv : w)\n"
              "        total += kv.second;\n"
              "    return total;\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[det-unordered-iter]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("hot.cpp:4"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsUnorderedContainerLookups)
{
    const fs::path dir = fixtureDir("lint_unordered_iter_ok");
    const fs::path source = dir / "probe.cpp";
    writeFile(source,
              "#include <unordered_map>\n"
              "float pick(const std::unordered_map<int, float> &w,\n"
              "           int key) {\n"
              "    const auto it = w.find(key);\n"
              "    return it == w.end() ? 0.0f : it->second;\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsHiddenGlobalRandomness)
{
    const fs::path dir = fixtureDir("lint_rand");
    const fs::path source = dir / "chaos.cpp";
    writeFile(source,
              "#include <cstdlib>\n"
              "#include <random>\n"
              "int roll() {\n"
              "    std::srand(time(0));\n"
              "    std::random_device rd;\n"
              "    return std::rand() + static_cast<int>(rd());\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[det-rand]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("chaos.cpp:4"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("chaos.cpp:5"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("chaos.cpp:6"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsSeededRngAndWaivedRandomness)
{
    const fs::path dir = fixtureDir("lint_rand_ok");
    const fs::path source = dir / "seeded.cpp";
    writeFile(source,
              "#include \"util/rng.h\"\n"
              "float draw(buffalo::util::Rng &rng) {\n"
              "    return rng.uniform();\n"
              "}\n"
              "int entropyProbe() {\n"
              "    // buffalo-lint: allow(det-rand) hardware entropy "
              "probe, not used in training\n"
              "    std::random_device rd;\n"
              "    return static_cast<int>(rd());\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsSharedAccumulationInParallelFor)
{
    const fs::path dir = fixtureDir("lint_parallel_accum");
    const fs::path source = dir / "racy.cpp";
    writeFile(source,
              "#include \"util/thread_pool.h\"\n"
              "float sum(buffalo::util::ThreadPool &pool,\n"
              "          const std::vector<float> &vals) {\n"
              "    float total = 0.0f;\n"
              "    pool.parallelFor(0, vals.size(), [&](std::size_t "
              "i) {\n"
              "        total += vals[i];\n"
              "    });\n"
              "    return total;\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[det-parallel-accum]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("racy.cpp:6"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsOwnerPartitionedParallelWrites)
{
    const fs::path dir = fixtureDir("lint_parallel_accum_ok");
    const fs::path source = dir / "owned.cpp";
    writeFile(source,
              "#include \"util/thread_pool.h\"\n"
              "void scale(buffalo::util::ThreadPool &pool,\n"
              "           std::vector<float> &out,\n"
              "           const std::vector<float> &vals) {\n"
              "    pool.parallelFor(0, vals.size(), [&](std::size_t "
              "i) {\n"
              "        float local = 0.0f;\n"
              "        local += vals[i];\n"
              "        out[i] += local;\n"
              "    });\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsPointerKeyedContainers)
{
    const fs::path dir = fixtureDir("lint_ptr_key");
    const fs::path source = dir / "addr.cpp";
    writeFile(source,
              "#include <map>\n"
              "struct Node;\n"
              "std::map<Node *, int> makeIndex() {\n"
              "    return {};\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[det-ptr-key]"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("addr.cpp:3"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsPointerValuesBehindStableKeys)
{
    const fs::path dir = fixtureDir("lint_ptr_key_ok");
    const fs::path source = dir / "stable.cpp";
    writeFile(source,
              "#include <map>\n"
              "struct Node;\n"
              "std::map<int, Node *> makeIndex() {\n"
              "    return {};\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

// --- lock-discipline rules ------------------------------------------

TEST(LintTest, FlagsCvWaitOutsidePredicateLoop)
{
    const fs::path dir = fixtureDir("lint_cv_wait");
    const fs::path source = dir / "naive.cpp";
    writeFile(source,
              "#include <condition_variable>\n"
              "#include <mutex>\n"
              "void waitReady(std::mutex &m,\n"
              "               std::condition_variable &cv) {\n"
              "    std::unique_lock<std::mutex> lock(m);\n"
              "    cv.wait(lock);\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[lock-cv-wait]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("naive.cpp:6"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsCvWaitInsideLoops)
{
    const fs::path dir = fixtureDir("lint_cv_wait_ok");
    const fs::path source = dir / "looped.cpp";
    writeFile(source,
              "#include <chrono>\n"
              "#include <condition_variable>\n"
              "#include <mutex>\n"
              "void waitReady(std::mutex &m,\n"
              "               std::condition_variable &cv,\n"
              "               bool &ready, bool verbose) {\n"
              "    std::unique_lock<std::mutex> lock(m);\n"
              "    while (!ready)\n"
              "        cv.wait(lock);\n"
              "    while (!ready) {\n"
              "        if (verbose) {\n"
              "            cv.wait_for(lock,\n"
              "                        std::chrono::milliseconds(1));"
              "\n"
              "        }\n"
              "    }\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsThreadDetach)
{
    const fs::path dir = fixtureDir("lint_detach");
    const fs::path source = dir / "runaway.cpp";
    writeFile(source,
              "#include <thread>\n"
              "void fire(std::thread &t) {\n"
              "    t.detach();\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[lock-thread-detach]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("runaway.cpp:3"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsJoinedThreads)
{
    const fs::path dir = fixtureDir("lint_detach_ok");
    const fs::path source = dir / "tended.cpp";
    writeFile(source,
              "#include <thread>\n"
              "void land(std::thread &t) {\n"
              "    if (t.joinable())\n"
              "        t.join();\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsExcludedCallUnderHeldMutex)
{
    const fs::path dir = fixtureDir("lint_excludes");
    const fs::path source = dir / "deadlock.cpp";
    writeFile(source,
              "#include \"util/thread_annotations.h\"\n"
              "class Logger {\n"
              "  public:\n"
              "    void flush() BUFFALO_EXCLUDES(mutex_);\n"
              "    void writeAll() {\n"
              "        buffalo::util::MutexLock lock(mutex_);\n"
              "        flush();\n"
              "    }\n"
              "  private:\n"
              "    buffalo::util::Mutex mutex_;\n"
              "};\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[lock-excludes-held]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("deadlock.cpp:7"),
              std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsExcludedCallAfterLockScopeEnds)
{
    const fs::path dir = fixtureDir("lint_excludes_ok");
    const fs::path source = dir / "staged.cpp";
    writeFile(source,
              "#include \"util/thread_annotations.h\"\n"
              "class Logger {\n"
              "  public:\n"
              "    void flush() BUFFALO_EXCLUDES(mutex_);\n"
              "    void writeAll() {\n"
              "        {\n"
              "            buffalo::util::MutexLock lock(mutex_);\n"
              "            dirty_ = true;\n"
              "        }\n"
              "        flush();\n"
              "    }\n"
              "  private:\n"
              "    buffalo::util::Mutex mutex_;\n"
              "    bool dirty_ BUFFALO_GUARDED_BY(mutex_) = false;\n"
              "};\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsPublicMethodTouchingGuardedMemberUnlocked)
{
    const fs::path dir = fixtureDir("lint_guarded_public");
    const fs::path source = dir / "peek.cpp";
    writeFile(source,
              "#include \"util/thread_annotations.h\"\n"
              "class Counter {\n"
              "  public:\n"
              "    int get() { return count_; }\n"
              "  private:\n"
              "    buffalo::util::Mutex mutex_;\n"
              "    int count_ BUFFALO_GUARDED_BY(mutex_) = 0;\n"
              "};\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[lock-guarded-public]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("peek.cpp:4"), std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsLockedOrRequiresAnnotatedAccess)
{
    const fs::path dir = fixtureDir("lint_guarded_public_ok");
    const fs::path source = dir / "locked.cpp";
    writeFile(source,
              "#include \"util/thread_annotations.h\"\n"
              "class Counter {\n"
              "  public:\n"
              "    int get() {\n"
              "        buffalo::util::MutexLock lock(mutex_);\n"
              "        return count_;\n"
              "    }\n"
              "    int getLocked() BUFFALO_REQUIRES(mutex_) {\n"
              "        return count_;\n"
              "    }\n"
              "  private:\n"
              "    buffalo::util::Mutex mutex_;\n"
              "    int count_ BUFFALO_GUARDED_BY(mutex_) = 0;\n"
              "};\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

// --- capture-escape rules -------------------------------------------

TEST(LintTest, FlagsRefCaptureEscapingIntoPool)
{
    const fs::path dir = fixtureDir("lint_escape_ref");
    const fs::path source = dir / "dangling.cpp";
    writeFile(source,
              "#include \"util/thread_pool.h\"\n"
              "void spawn(buffalo::util::ThreadPool &pool) {\n"
              "    int local = 7;\n"
              "    pool.submit([&local] { local += 1; });\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[escape-ref-capture]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("dangling.cpp:4"),
              std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsValueCapturesEscapingIntoPool)
{
    const fs::path dir = fixtureDir("lint_escape_ref_ok");
    const fs::path source = dir / "owned.cpp";
    writeFile(source,
              "#include \"util/thread_pool.h\"\n"
              "void spawn(buffalo::util::ThreadPool &pool) {\n"
              "    int local = 7;\n"
              "    pool.submit([local] { (void)local; });\n"
              "}\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintTest, FlagsThisCaptureStoredInThread)
{
    const fs::path dir = fixtureDir("lint_escape_this");
    const fs::path source = dir / "untended.cpp";
    writeFile(source,
              "#include <thread>\n"
              "#include <vector>\n"
              "class Owner {\n"
              "  public:\n"
              "    void start() {\n"
              "        threads_.emplace_back([this] { tick(); });\n"
              "    }\n"
              "  private:\n"
              "    void tick();\n"
              "    std::vector<std::thread> threads_;\n"
              "};\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[escape-this-capture]"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("untended.cpp:6"),
              std::string::npos)
        << result.output;
}

TEST(LintTest, AcceptsWaivedThisCaptureWithJustification)
{
    const fs::path dir = fixtureDir("lint_escape_this_ok");
    const fs::path source = dir / "tended.cpp";
    writeFile(source,
              "#include <thread>\n"
              "#include <vector>\n"
              "class Owner {\n"
              "  public:\n"
              "    void start() {\n"
              "        // buffalo-lint: allow(escape-this-capture) "
              "joined in ~Owner before members die\n"
              "        threads_.emplace_back([this] { tick(); });\n"
              "    }\n"
              "  private:\n"
              "    void tick();\n"
              "    std::vector<std::thread> threads_;\n"
              "};\n");
    const RunResult result = runLint(source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("clean"), std::string::npos)
        << result.output;
}

// --- JSON report and scan-scope masks -------------------------------

TEST(LintTest, JsonReportCarriesFindingsAndWaiverCounts)
{
    const fs::path dir = fixtureDir("lint_json");
    const fs::path source = dir / "mixed.cpp";
    writeFile(source,
              "#include <thread>\n"
              "void fire(std::thread &a, std::thread &b) {\n"
              "    a.detach();\n"
              "    // buffalo-lint: allow(lock-thread-detach) "
              "fixture waiver\n"
              "    b.detach();\n"
              "}\n");
    const RunResult result =
        runLint("--json " + source.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("\"version\": 2"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find(
                  "\"total\": 2, \"active\": 1, \"waived\": 1"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("\"rule\": \"lock-thread-detach\""),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("\"waived\": true"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("\"waived\": false"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find(
                  "\"waiver_reason\": \"fixture waiver\""),
              std::string::npos)
        << result.output;
}

TEST(LintTest, JsonOutWritesReportFileAlongsideHumanOutput)
{
    const fs::path dir = fixtureDir("lint_json_out");
    const fs::path source = dir / "clean.cpp";
    const fs::path report = dir / "lint_report.json";
    writeFile(source, "int answer() { return 42; }\n");
    const RunResult result = runLint(
        "--json-out " + report.string() + " " + source.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("clean"), std::string::npos)
        << result.output;
    std::ifstream in(report);
    ASSERT_TRUE(in.good()) << report;
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(json.find("\"version\": 2"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"active\": 0"), std::string::npos) << json;
}

TEST(LintTest, TestDirectoryMaskSilencesStyleRulesOnly)
{
    const fs::path root = fixtureDir("lint_dir_masks");
    writeFile(root / "src" / "obs" / "names.h",
              "#pragma once\n"
              "namespace buffalo::obs::names {}\n");
    writeFile(root / "tools" / "ci.sh",
              "#!/usr/bin/env bash\n");
    // Style violations under tests/ are masked...
    writeFile(root / "tests" / "fixture_test.cpp",
              "#include <cstdlib>\n"
              "void scratch() {\n"
              "    void *blob = std::malloc(64);\n"
              "    std::free(blob);\n"
              "}\n");
    RunResult result = runLint("--root " + root.string());
    EXPECT_EQ(result.exit_code, 0) << result.output;
    // ...but the determinism/lock families still apply there.
    writeFile(root / "tests" / "detach_test.cpp",
              "#include <thread>\n"
              "void fire(std::thread &t) {\n"
              "    t.detach();\n"
              "}\n");
    result = runLint("--root " + root.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[lock-thread-detach]"),
              std::string::npos)
        << result.output;
    // The same style violations under src/ are not masked.
    writeFile(root / "src" / "scratch.cpp",
              "#include <cstdlib>\n"
              "void scratch() {\n"
              "    void *blob = std::malloc(64);\n"
              "    std::free(blob);\n"
              "}\n");
    result = runLint("--root " + root.string());
    EXPECT_EQ(result.exit_code, 1) << result.output;
    EXPECT_NE(result.output.find("[raw-alloc]"), std::string::npos)
        << result.output;
}

} // namespace
