/**
 * @file
 * Tests for the observability layer: metric primitives under
 * concurrency, reservoir-histogram percentile exactness, tracer ring
 * semantics, and the JSON schema round-trips the obs_validate CI tool
 * relies on.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/flush.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "util/errors.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace buffalo::obs {
namespace {

// ---------------------------------------------------------------------
// Metrics

TEST(Metrics, CountersAreExactUnderParallelFor)
{
    MetricsRegistry registry;
    util::ThreadPool pool(8);
    constexpr std::size_t kIters = 10000;
    pool.parallelFor(0, kIters, [&](std::size_t i) {
        registry.counter("test.iterations").add();
        registry.counter("test.bytes").add(i);
        registry.gauge("test.high_water")
            .setMax(static_cast<double>(i));
        registry.histogram("test.values")
            .add(static_cast<double>(i));
    });
    EXPECT_EQ(registry.counter("test.iterations").value(), kIters);
    EXPECT_EQ(registry.counter("test.bytes").value(),
              kIters * (kIters - 1) / 2);
    EXPECT_EQ(registry.gauge("test.high_water").value(),
              static_cast<double>(kIters - 1));
    EXPECT_EQ(registry.histogram("test.values").count(), kIters);
}

TEST(Metrics, HandlesAreStableAcrossLookups)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("stable");
    // Force rebalancing churn around the first registration.
    for (int i = 0; i < 100; ++i)
        registry.counter("churn." + std::to_string(i)).add();
    Counter &b = registry.counter("stable");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, GaugeSetMaxNeverLowers)
{
    Gauge gauge;
    gauge.setMax(5.0);
    gauge.setMax(3.0);
    EXPECT_EQ(gauge.value(), 5.0);
    gauge.set(1.0); // plain set may lower
    EXPECT_EQ(gauge.value(), 1.0);
}

TEST(Metrics, ResetZeroesButKeepsRegistrations)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("will.reset");
    c.add(7);
    registry.histogram("hist.reset").add(1.0);
    registry.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(registry.histogram("hist.reset").count(), 0u);
    EXPECT_EQ(&registry.counter("will.reset"), &c);
}

// ---------------------------------------------------------------------
// Histogram percentiles

TEST(Histogram, PercentilesExactBelowCapacity)
{
    ReservoirHistogram hist(2048);
    // 1..1000 inserted in a scrambled order: below capacity the
    // reservoir holds every observation, so percentiles are exact
    // linear interpolations over 1..1000.
    std::vector<double> values;
    for (int i = 1; i <= 1000; ++i)
        values.push_back(static_cast<double>(i));
    std::mt19937_64 shuffle(123);
    std::shuffle(values.begin(), values.end(), shuffle);
    for (const double v : values)
        hist.add(v);

    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_EQ(snap.min, 1.0);
    EXPECT_EQ(snap.max, 1000.0);
    EXPECT_DOUBLE_EQ(snap.mean, 500.5);
    // percentile p interpolates at rank p/100*(n-1): exact values.
    EXPECT_NEAR(snap.p50, 500.5, 1e-9);
    EXPECT_NEAR(snap.p95, 950.05, 1e-9);
    EXPECT_NEAR(snap.p99, 990.01, 1e-9);
    EXPECT_NEAR(snap.p999, 999.001, 1e-9);
    // Population stddev of 1..n: sqrt((n^2 - 1) / 12).
    EXPECT_NEAR(snap.stddev, 288.6749902572095, 1e-6);
    EXPECT_NEAR(hist.percentile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(hist.percentile(100.0), 1000.0, 1e-12);
}

TEST(Histogram, PastCapacityStaysInRangeAndDeterministic)
{
    ReservoirHistogram a(64);
    ReservoirHistogram b(64);
    for (int i = 0; i < 10000; ++i) {
        a.add(static_cast<double>(i % 500));
        b.add(static_cast<double>(i % 500));
    }
    EXPECT_EQ(a.count(), 10000u);
    const HistogramSnapshot sa = a.snapshot();
    const HistogramSnapshot sb = b.snapshot();
    // min/max track the full stream, not just the reservoir.
    EXPECT_EQ(sa.min, 0.0);
    EXPECT_EQ(sa.max, 499.0);
    EXPECT_GE(sa.p50, 0.0);
    EXPECT_LE(sa.p50, 499.0);
    EXPECT_LE(sa.p50, sa.p95);
    EXPECT_LE(sa.p95, sa.p99);
    EXPECT_LE(sa.p99, sa.p999);
    EXPECT_GE(sa.stddev, 0.0);
    // Deterministic seeding: identical streams, identical snapshots.
    EXPECT_EQ(sa.p50, sb.p50);
    EXPECT_EQ(sa.p99, sb.p99);
}

TEST(Histogram, EmptySnapshotIsZero)
{
    ReservoirHistogram hist;
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.p50, 0.0);
    EXPECT_EQ(snap.stddev, 0.0);
    EXPECT_EQ(hist.percentile(95.0), 0.0);
}

// ---------------------------------------------------------------------
// Tracer

TEST(Trace, DisabledTracerRecordsNothing)
{
    Tracer tracer;
    {
        Span span(tracer, "ignored");
    }
    EXPECT_EQ(tracer.spanCount(), 0u);
    EXPECT_EQ(tracer.toJson(), "[]");
}

TEST(Trace, SpansFromManyThreadsExportSorted)
{
    Tracer tracer;
    tracer.enable();
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 25;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tracer] {
            for (int i = 0; i < kSpansPerThread; ++i)
                Span span(tracer, "worker.span");
        });
    }
    for (std::thread &t : threads)
        t.join();
    tracer.disable();
    EXPECT_EQ(tracer.spanCount(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    EXPECT_EQ(tracer.droppedSpans(), 0u);

    const JsonValue doc = JsonValue::parse(tracer.toJson());
    ASSERT_TRUE(doc.isArray());
    ASSERT_EQ(doc.size(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    double last_ts = -1.0;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const JsonValue &event = doc.at(i);
        EXPECT_EQ(event.at("name").asString(), "worker.span");
        EXPECT_EQ(event.at("ph").asString(), "X");
        EXPECT_GE(event.at("ts").asNumber(), last_ts);
        EXPECT_GE(event.at("dur").asNumber(), 0.0);
        EXPECT_EQ(event.at("pid").asNumber(), 1.0);
        EXPECT_GE(event.at("tid").asNumber(), 0.0);
        last_ts = event.at("ts").asNumber();
    }
}

TEST(Trace, RingOverwritesOldestAndCountsDrops)
{
    Tracer tracer(/*ring_capacity=*/8);
    tracer.enable();
    for (int i = 0; i < 20; ++i)
        tracer.record("r", static_cast<double>(i), 1.0);
    tracer.disable();
    EXPECT_EQ(tracer.spanCount(), 8u);
    EXPECT_EQ(tracer.droppedSpans(), 12u);

    // The survivors are the 8 newest records.
    const JsonValue doc = JsonValue::parse(tracer.toJson());
    ASSERT_EQ(doc.size(), 8u);
    EXPECT_EQ(doc.at(0u).at("ts").asNumber(), 12.0);
    EXPECT_EQ(doc.at(7u).at("ts").asNumber(), 19.0);
}

TEST(Trace, ItemAttributedSpansExportArgsItem)
{
    Tracer tracer;
    tracer.enable();
    // toJson() sorts by start time and the scoped span's start is
    // real-clock microseconds since tracer construction, so the
    // explicit timestamps must bracket it: 0.0 sorts first and the
    // far-future start sorts last no matter how quickly the scoped
    // span opens (2.0 µs used to race the clock and flake).
    tracer.record("attributed", 0.0, 1.0, /*item=*/7);
    tracer.record("plain", 1e15, 1.0);
    {
        Span span(tracer, "scoped", /*item=*/9);
    }
    tracer.disable();

    const JsonValue doc = JsonValue::parse(tracer.toJson());
    ASSERT_EQ(doc.size(), 3u);
    EXPECT_EQ(doc.at(0u).at("args").at("item").asNumber(), 7.0);
    EXPECT_EQ(doc.at(1u).at("args").at("item").asNumber(), 9.0);
    // Unattributed spans carry no args block at all.
    EXPECT_FALSE(doc.at(2u).has("args"));
}

TEST(Trace, SetRingCapacityTakesEffectAndReportsDrops)
{
    Tracer tracer;
    tracer.setRingCapacity(4);
    EXPECT_EQ(tracer.ringCapacity(), 4u);
    tracer.enable();
    for (int i = 0; i < 6; ++i)
        tracer.record("r", static_cast<double>(i), 1.0);
    tracer.disable();
    EXPECT_EQ(tracer.spanCount(), 4u);
    EXPECT_EQ(tracer.droppedSpans(), 2u);

    // Per-thread drop reports sum to the global drop counter; a
    // single-threaded recorder has exactly one nonzero entry.
    std::uint64_t total = 0;
    for (const ThreadDropReport &report : tracer.droppedByThread())
        total += report.dropped;
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(tracer.droppedByThread().size(), 1u);
}

TEST(Trace, RingCapacityClampedToAtLeastOne)
{
    Tracer tracer;
    tracer.setRingCapacity(0);
    EXPECT_EQ(tracer.ringCapacity(), 1u);
    tracer.enable();
    tracer.record("a", 0.0, 1.0);
    tracer.record("b", 1.0, 1.0);
    tracer.disable();
    EXPECT_EQ(tracer.spanCount(), 1u);
    EXPECT_EQ(tracer.droppedSpans(), 1u);
}

TEST(Trace, ClearDropsBufferedSpans)
{
    Tracer tracer;
    tracer.enable();
    tracer.record("a", 0.0, 1.0);
    tracer.clear();
    EXPECT_EQ(tracer.spanCount(), 0u);
}

// ---------------------------------------------------------------------
// JSON schema round-trips

TEST(Json, MetricsExportRoundTrips)
{
    MetricsRegistry registry;
    registry.counter("c.one").add(41);
    registry.gauge("g.load").set(0.75);
    for (int i = 0; i < 10; ++i)
        registry.histogram("h.lat").add(static_cast<double>(i));

    const JsonValue doc = JsonValue::parse(registry.toJson());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("counters").at("c.one").asNumber(), 41.0);
    EXPECT_EQ(doc.at("gauges").at("g.load").asNumber(), 0.75);
    const JsonValue &hist = doc.at("histograms").at("h.lat");
    EXPECT_EQ(hist.at("count").asNumber(), 10.0);
    EXPECT_EQ(hist.at("min").asNumber(), 0.0);
    EXPECT_EQ(hist.at("max").asNumber(), 9.0);
    for (const char *field :
         {"count", "min", "max", "mean", "stddev", "p50", "p95",
          "p99", "p999"})
        EXPECT_TRUE(hist.has(field)) << field;
}

TEST(Json, ParserHandlesEscapesAndNesting)
{
    const JsonValue doc = JsonValue::parse(
        R"({"s":"a\"b\\c\u0041\n","arr":[1,-2.5e2,true,null],)"
        R"("nested":{"k":{}}})");
    EXPECT_EQ(doc.at("s").asString(), "a\"b\\cA\n");
    EXPECT_EQ(doc.at("arr").at(1u).asNumber(), -250.0);
    EXPECT_TRUE(doc.at("arr").at(3u).isNull());
    EXPECT_TRUE(doc.at("nested").at("k").isObject());
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), InvalidArgument);
    EXPECT_THROW(JsonValue::parse("{"), InvalidArgument);
    EXPECT_THROW(JsonValue::parse("[1,]"), InvalidArgument);
    EXPECT_THROW(JsonValue::parse("{\"a\":1} extra"),
                 InvalidArgument);
    EXPECT_THROW(JsonValue::parse("nul"), InvalidArgument);
    EXPECT_THROW(JsonValue::parse("\"\\x\""), InvalidArgument);
}

TEST(Json, WriterEscapesAndPlacesCommas)
{
    JsonWriter w;
    w.beginObject();
    w.key("a\"b").beginArray();
    w.value(1).value(std::string_view("x\ny"));
    w.endArray();
    w.key("n").value(2.5);
    w.endObject();
    const JsonValue doc = JsonValue::parse(w.str());
    EXPECT_EQ(doc.at("a\"b").at(1u).asString(), "x\ny");
    EXPECT_EQ(doc.at("n").asNumber(), 2.5);
}

// ---------------------------------------------------------------------
// Phase enum

TEST(Phase, NamesMatchLegacyStringsAndCoverAllPhases)
{
    EXPECT_STREQ(phaseName(Phase::Sampling), "sampling");
    EXPECT_STREQ(phaseName(Phase::Scheduling), "buffalo scheduling");
    EXPECT_STREQ(phaseName(Phase::GpuCompute), "GPU compute");
    EXPECT_EQ(kAllPhases.size(), static_cast<std::size_t>(kNumPhases));
    // Names are distinct non-null literals.
    for (std::size_t i = 0; i < kAllPhases.size(); ++i)
        for (std::size_t j = i + 1; j < kAllPhases.size(); ++j)
            EXPECT_STRNE(phaseName(kAllPhases[i]),
                         phaseName(kAllPhases[j]));
}

TEST(Phase, PhaseScopeChargesTimerAndSpan)
{
    Tracer &global = tracer();
    global.clear();
    global.enable();
    util::PhaseTimer timer;
    {
        PhaseScope scope(timer, Phase::ConnectionCheck);
    }
    global.disable();
    EXPECT_GE(timer.get(phaseName(Phase::ConnectionCheck)), 0.0);
    EXPECT_EQ(timer.phases().size(), 1u);
    EXPECT_GE(global.spanCount(), 1u);
    global.clear();
}

// ---------------------------------------------------------------------
// Exit-safe flushing

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(ExitFlush, FlushClosesLogAndWritesMetrics)
{
    const std::string dir = ::testing::TempDir();
    const std::string log_path = dir + "/buffalo_flush_test.jsonl";
    const std::string metrics_path =
        dir + "/buffalo_flush_test_metrics.json";
    std::remove(log_path.c_str());
    std::remove(metrics_path.c_str());

    eventLog().open(log_path);
    eventLog().event("run.begin").field("tool", "obs_test");
    metrics().counter("test.flush.marker").add(3);
    exitFlush().registerMetricsJson(metrics_path);
    exitFlush().flush();

    // The log is closed (complete on disk) and terminated by the
    // run.flush marker; the metrics dump exists and parses.
    EXPECT_FALSE(eventLog().enabled());
    const std::string log = slurp(log_path);
    EXPECT_NE(log.find("\"run.begin\""), std::string::npos) << log;
    EXPECT_NE(log.find("\"run.flush\""), std::string::npos) << log;
    const std::string metrics_json = slurp(metrics_path);
    EXPECT_NE(metrics_json.find("test.flush.marker"),
              std::string::npos);
    EXPECT_NO_THROW(JsonValue::parse(metrics_json));

    // Idempotent: a second flush (the atexit hook on a clean exit)
    // must not reopen the log or append anything.
    const auto size_before = log.size();
    exitFlush().flush();
    EXPECT_EQ(slurp(log_path).size(), size_before);
    exitFlush().registerMetricsJson("");
}

TEST(ExitFlushDeath, AtexitHookFlushesOnEarlyExit)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string dir = ::testing::TempDir();
    const std::string log_path = dir + "/buffalo_exit_test.jsonl";
    const std::string metrics_path =
        dir + "/buffalo_exit_test_metrics.json";
    std::remove(log_path.c_str());
    std::remove(metrics_path.c_str());

    // The child arms the hook and leaves through std::exit without
    // ever flushing explicitly — the early-termination path that
    // used to truncate --run-log/--metrics-json output.
    EXPECT_EXIT(
        {
            eventLog().open(log_path);
            eventLog().event("run.begin").field("tool", "child");
            metrics().counter("test.exit.marker").add(1);
            exitFlush().registerMetricsJson(metrics_path);
            exitFlush().arm();
            std::exit(0);
        },
        ::testing::ExitedWithCode(0), "");

    const std::string log = slurp(log_path);
    EXPECT_NE(log.find("\"run.begin\""), std::string::npos) << log;
    EXPECT_NE(log.find("\"run.flush\""), std::string::npos) << log;
    const std::string metrics_json = slurp(metrics_path);
    EXPECT_NE(metrics_json.find("test.exit.marker"),
              std::string::npos);
    EXPECT_NO_THROW(JsonValue::parse(metrics_json));
}

} // namespace
} // namespace buffalo::obs
