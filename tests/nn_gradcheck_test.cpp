/**
 * @file
 * Numerical gradient checks (central differences) for every
 * differentiable module: Linear, LSTM cell, all aggregators, and the
 * full GraphSAGE / GAT models through the cross-entropy loss. These
 * anchor the convergence-parity experiments (Table IV, Fig. 17) — if
 * backward passes are right, gradient accumulation equivalence follows.
 */
#include <gtest/gtest.h>

#include "nn/aggregators.h"
#include "nn/gat_model.h"
#include "nn/gcn_model.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/sage_model.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace buffalo::nn {
namespace {

namespace ops = buffalo::tensor;

constexpr float kEps = 1e-2f;
constexpr double kTol = 3e-2; // float32 central differences

/** L = sum(out .* weights): a generic scalar head for grad checks. */
double
weightedLoss(const Tensor &out, const Tensor &weights)
{
    return ops::sum(ops::multiply(out, weights));
}

/** Relative error robust to small denominators. */
double
relErr(double analytic, double numeric)
{
    const double denom =
        std::max({std::abs(analytic), std::abs(numeric), 1e-3});
    return std::abs(analytic - numeric) / denom;
}

/**
 * Checks one coordinate by central differences. Estimates at two step
 * sizes must agree, otherwise the coordinate sits on a kink (ReLU /
 * max-pool argmax boundary) where numerical gradients are meaningless
 * and the coordinate is skipped.
 */
template <typename LossFn>
void
checkCoordinate(float &slot, double analytic, LossFn loss_of,
                const std::string &label)
{
    const float original = slot;
    auto central = [&](float eps) {
        slot = original + eps;
        const double up = loss_of();
        slot = original - eps;
        const double down = loss_of();
        slot = original;
        return (up - down) / (2.0 * eps);
    };
    const double n1 = central(kEps);
    const double n2 = central(2 * kEps);
    if (relErr(n1, n2) > 0.02)
        return; // nonsmooth point
    EXPECT_LT(relErr(analytic, n1), kTol) << label;
}

TEST(GradCheck, LinearInputAndParams)
{
    util::Rng rng(1);
    Linear layer("lin", 4, 3, rng);
    Tensor x = Tensor::zeros(5, 4);
    ops::fillUniform(x, 1.0f, rng);
    Tensor head = Tensor::zeros(5, 3);
    ops::fillUniform(head, 1.0f, rng);

    Linear::Cache cache;
    layer.forward(x, cache);
    layer.zeroGrad();
    Tensor grad_x = layer.backward(cache, head);

    auto loss_of = [&]() {
        Linear::Cache c;
        return weightedLoss(layer.forward(x, c), head);
    };

    // Input gradient.
    for (std::size_t k = 0; k < x.size(); k += 3)
        checkCoordinate(x.data()[k], grad_x.data()[k], loss_of,
                        "x[" + std::to_string(k) + "]");

    // Weight gradient (sampled entries).
    Tensor &w = layer.weight().value();
    const Tensor &gw = layer.weight().grad();
    for (std::size_t k = 0; k < w.size(); k += 5)
        checkCoordinate(w.data()[k], gw.data()[k], loss_of,
                        "w[" + std::to_string(k) + "]");

    // Bias gradient.
    Tensor &b = layer.bias().value();
    const Tensor &gb = layer.bias().grad();
    for (std::size_t k = 0; k < b.size(); ++k)
        checkCoordinate(b.data()[k], gb.data()[k], loss_of,
                        "b[" + std::to_string(k) + "]");
}

TEST(GradCheck, LstmCellTwoSteps)
{
    util::Rng rng(2);
    const std::size_t n = 3, f = 4;
    LstmCell cell("lstm", f, f, rng);

    Tensor x0 = Tensor::zeros(n, f), x1 = Tensor::zeros(n, f);
    ops::fillUniform(x0, 0.8f, rng);
    ops::fillUniform(x1, 0.8f, rng);
    Tensor head = Tensor::zeros(n, f);
    ops::fillUniform(head, 1.0f, rng);

    auto run_forward = [&](double *loss_out) {
        Tensor h = Tensor::zeros(n, f), c = Tensor::zeros(n, f);
        LstmCell::StepCache c0, c1;
        auto [h1, s1] = cell.step(x0, h, c, c0);
        auto [h2, s2] = cell.step(x1, h1, s1, c1);
        *loss_out = weightedLoss(h2, head);
        return std::pair{std::move(c0), std::move(c1)};
    };

    double base_loss = 0.0;
    auto [cache0, cache1] = run_forward(&base_loss);
    cell.zeroGrad();
    Tensor dc = Tensor::zeros(n, f);
    auto g1 = cell.stepBackward(cache1, head, dc);
    auto g0 = cell.stepBackward(cache0, g1.dh_prev, g1.dc_prev);

    auto loss_of = [&]() {
        double loss = 0.0;
        run_forward(&loss);
        return loss;
    };

    // Grad w.r.t. the first step's input (goes through the recurrence).
    for (std::size_t k = 0; k < x0.size(); k += 2)
        checkCoordinate(x0.data()[k], g0.dx.data()[k], loss_of,
                        "x0[" + std::to_string(k) + "]");

    // Grad w.r.t. Wx (sampled).
    auto params = cell.parameters();
    Tensor &wx = params[0]->value();
    const Tensor &gwx = params[0]->grad();
    for (std::size_t k = 0; k < wx.size(); k += 17)
        checkCoordinate(wx.data()[k], gwx.data()[k], loss_of,
                        "wx[" + std::to_string(k) + "]");
}

/** Parameterized gradient check over every aggregator family. */
class AggregatorGradCheck
    : public ::testing::TestWithParam<AggregatorKind>
{
};

TEST_P(AggregatorGradCheck, NeighborAndParamGradients)
{
    util::Rng rng(3);
    const std::size_t n = 4, d = 3, f = 5;
    auto agg = makeAggregator(GetParam(), "agg", f, rng);

    Tensor feats = Tensor::zeros(n * d, f);
    ops::fillUniform(feats, 0.9f, rng);
    Tensor head = Tensor::zeros(n, f);
    ops::fillUniform(head, 1.0f, rng);

    auto loss_of = [&]() {
        std::unique_ptr<AggregatorCache> cache;
        return weightedLoss(agg->forward(feats, n, d, cache), head);
    };

    std::unique_ptr<AggregatorCache> cache;
    agg->forward(feats, n, d, cache);
    agg->zeroGrad();
    Tensor grad_in = agg->backward(*cache, head);
    ASSERT_EQ(grad_in.rows(), n * d);
    ASSERT_EQ(grad_in.cols(), f);

    for (std::size_t k = 0; k < feats.size(); k += 4)
        checkCoordinate(feats.data()[k], grad_in.data()[k], loss_of,
                        std::string(aggregatorName(GetParam())) +
                            " feats[" + std::to_string(k) + "]");

    // Parameter gradients (where the aggregator has any).
    for (Parameter *param : agg->parameters()) {
        Tensor &value = param->value();
        const Tensor &grad = param->grad();
        for (std::size_t k = 0; k < value.size(); k += 13)
            checkCoordinate(value.data()[k], grad.data()[k], loss_of,
                            param->name() + "[" +
                                std::to_string(k) + "]");
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AggregatorGradCheck,
    ::testing::Values(AggregatorKind::Mean, AggregatorKind::Gcn,
                      AggregatorKind::Pool, AggregatorKind::Lstm),
    [](const ::testing::TestParamInfo<AggregatorKind> &info) {
        return aggregatorName(info.param);
    });

/** Tiny deterministic two-layer micro-batch over 6 input nodes. */
sampling::MicroBatch
tinyMicroBatch()
{
    // Bottom layer: 4 dst (ids 0-3) over 6 srcs (ids 0-5).
    sampling::Block bottom;
    bottom.src_nodes = {0, 1, 2, 3, 4, 5};
    bottom.num_dst = 4;
    bottom.offsets = {0, 2, 4, 5, 7};
    bottom.neighbors = {4, 5, 0, 4, 5, 1, 2};

    // Top layer: 2 dst (seeds 0, 1) over the 4 lower dsts.
    sampling::Block top;
    top.src_nodes = {0, 1, 2, 3};
    top.num_dst = 2;
    top.offsets = {0, 2, 4};
    top.neighbors = {2, 3, 0, 3};

    sampling::MicroBatch mb;
    mb.blocks = {bottom, top};
    mb.validateChain();
    return mb;
}

/** Parameterized end-to-end model gradient check. */
struct ModelCase
{
    ModelArch arch;
    AggregatorKind aggregator;
    const char *name;
};

class ModelGradCheck : public ::testing::TestWithParam<ModelCase>
{
};

TEST_P(ModelGradCheck, ParamsThroughCrossEntropy)
{
    const ModelCase &param = GetParam();
    util::Rng rng(4);
    ModelConfig config;
    config.aggregator = param.aggregator;
    config.num_layers = 2;
    config.feature_dim = 4;
    config.hidden_dim = 6;
    config.num_classes = 3;

    sampling::MicroBatch mb = tinyMicroBatch();
    Tensor feats = Tensor::zeros(6, config.feature_dim);
    ops::fillUniform(feats, 0.8f, rng);
    std::vector<std::int32_t> labels = {1, 2};

    auto check_model = [&](auto &model) {
        auto loss_of = [&]() {
            typename std::decay_t<decltype(model)>::ForwardCache cache;
            Tensor logits = model.forward(mb, feats, cache);
            return softmaxCrossEntropy(logits, labels).loss;
        };

        typename std::decay_t<decltype(model)>::ForwardCache cache;
        Tensor logits = model.forward(mb, feats, cache);
        auto loss = softmaxCrossEntropy(logits, labels);
        model.zeroGrad();
        model.backward(cache, loss.grad_logits);

        for (Parameter *p : model.parameters()) {
            Tensor &value = p->value();
            const Tensor &grad = p->grad();
            const std::size_t stride =
                std::max<std::size_t>(1, value.size() / 7);
            for (std::size_t k = 0; k < value.size(); k += stride)
                checkCoordinate(value.data()[k], grad.data()[k],
                                loss_of,
                                p->name() + "[" +
                                    std::to_string(k) + "]");
        }
    };

    switch (param.arch) {
      case ModelArch::Gat: {
          GatModel model(config, 99);
          check_model(model);
          break;
      }
      case ModelArch::Gcn: {
          GcnModel model(config, 99);
          check_model(model);
          break;
      }
      case ModelArch::Sage: {
          SageModel model(config, 99);
          check_model(model);
          break;
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, ModelGradCheck,
    ::testing::Values(
        ModelCase{ModelArch::Sage, AggregatorKind::Mean, "sage_mean"},
        ModelCase{ModelArch::Sage, AggregatorKind::Pool, "sage_pool"},
        ModelCase{ModelArch::Sage, AggregatorKind::Lstm, "sage_lstm"},
        ModelCase{ModelArch::Gat, AggregatorKind::Mean, "gat"},
        ModelCase{ModelArch::Gcn, AggregatorKind::Mean, "gcn"}),
    [](const ::testing::TestParamInfo<ModelCase> &info) {
        return info.param.name;
    });

TEST(GradCheck, SoftmaxCrossEntropyGradient)
{
    util::Rng rng(5);
    Tensor logits = Tensor::zeros(3, 4);
    ops::fillUniform(logits, 2.0f, rng);
    std::vector<std::int32_t> labels = {0, 3, 2};

    auto result = softmaxCrossEntropy(logits, labels);
    auto loss_of = [&]() {
        return softmaxCrossEntropy(logits, labels).loss;
    };
    for (std::size_t k = 0; k < logits.size(); ++k)
        checkCoordinate(logits.data()[k],
                        result.grad_logits.data()[k], loss_of,
                        "logits[" + std::to_string(k) + "]");
}

} // namespace
} // namespace buffalo::nn
