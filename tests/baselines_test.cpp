/**
 * @file
 * Tests for the Betty baseline (REG construction + METIS partitioning,
 * including the zero-in-edge failure the paper reports) and the
 * PyG-style padding accounting.
 */
#include <gtest/gtest.h>

#include <set>

#include "baselines/betty.h"
#include "baselines/padding.h"
#include "graph/datasets.h"
#include "sampling/block_generator.h"
#include "util/rng.h"

namespace buffalo::baselines {
namespace {

SampledSubgraph
sampleArxiv(std::size_t num_seeds = 128)
{
    static graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.1);
    util::Rng rng(4);
    sampling::NeighborSampler sampler({10, 10});
    graph::NodeList seeds(
        data.trainNodes().begin(),
        data.trainNodes().begin() +
            std::min(num_seeds, data.trainNodes().size()));
    return sampler.sample(data.graph(), seeds, rng);
}

TEST(Betty, RegCoversAllSeeds)
{
    auto sg = sampleArxiv();
    BettyPartitioner betty;
    auto reg = betty.buildReg(sg);
    reg.validate();
    EXPECT_EQ(reg.numNodes(), sg.numSeeds());
    // The REG must contain redundancy edges on a clustered graph.
    EXPECT_GT(reg.numEdges(), 0u);
    // Node weights reflect seed degree.
    const auto &top = sg.layerAdjacency(sg.numLayers() - 1);
    for (graph::NodeId seed = 0; seed < sg.numSeeds(); ++seed)
        EXPECT_EQ(reg.node_weights[seed], 1 + top.degree(seed));
}

TEST(Betty, RegEdgeWeightsCountSharedNeighbors)
{
    auto sg = sampleArxiv(64);
    BettyPartitioner betty;
    auto reg = betty.buildReg(sg);
    const auto &top = sg.layerAdjacency(sg.numLayers() - 1);

    // Spot-check: an edge's weight is at most the smaller sampled
    // degree of its endpoints.
    for (graph::NodeId u = 0; u < reg.numNodes(); ++u) {
        const auto &offsets = reg.graph.offsets();
        for (graph::EdgeIndex e = offsets[u]; e < offsets[u + 1];
             ++e) {
            const graph::NodeId v = reg.graph.targets()[e];
            EXPECT_LE(reg.edge_weights[e],
                      std::min(top.degree(u), top.degree(v)));
        }
    }
}

TEST(Betty, PartitionCoversSeedsDisjointly)
{
    auto sg = sampleArxiv();
    BettyPartitioner betty;
    auto parts = betty.partition(sg, 4);
    EXPECT_GE(parts.size(), 2u);
    std::set<graph::NodeId> seen;
    for (const auto &part : parts) {
        EXPECT_FALSE(part.empty());
        for (auto seed : part) {
            ASSERT_LT(seed, sg.numSeeds());
            EXPECT_TRUE(seen.insert(seed).second);
        }
    }
    EXPECT_EQ(seen.size(), sg.numSeeds());
}

TEST(Betty, RecordsPhaseTimings)
{
    auto sg = sampleArxiv();
    BettyPartitioner betty;
    betty.partition(sg, 4);
    EXPECT_GE(betty.lastPhases().reg_construction_seconds, 0.0);
    EXPECT_GE(betty.lastPhases().metis_seconds, 0.0);
}

TEST(Betty, ZeroInEdgeSeedFails)
{
    // papers-sim contains zero-in-edge nodes; Betty must refuse —
    // exactly the "no data" cell of paper Fig. 11.
    graph::Dataset papers =
        graph::loadDataset(graph::DatasetId::Papers, 42, 0.05);
    ASSERT_GT(papers.graph().countZeroDegreeNodes(), 0u);

    // Find an isolated node and include it in the seeds.
    graph::NodeList seeds;
    for (graph::NodeId u = 0; u < papers.graph().numNodes(); ++u) {
        if (papers.graph().degree(u) == 0) {
            seeds.push_back(u);
            break;
        }
    }
    for (graph::NodeId u = 0; seeds.size() < 32; ++u)
        if (papers.graph().degree(u) > 0)
            seeds.push_back(u);

    util::Rng rng(6);
    sampling::NeighborSampler sampler({5, 5});
    auto sg = sampler.sample(papers.graph(), seeds, rng);
    BettyPartitioner betty;
    EXPECT_THROW(betty.partition(sg, 2), BettyUnsupported);
}

TEST(Betty, BuffaloHandlesWhatBettyCannot)
{
    // The same zero-in-edge seeds must bucketize fine under Buffalo
    // (degree-0 bucket).
    graph::Dataset papers =
        graph::loadDataset(graph::DatasetId::Papers, 42, 0.05);
    graph::NodeList seeds;
    for (graph::NodeId u = 0;
         u < papers.graph().numNodes() && seeds.size() < 32; ++u) {
        if (papers.graph().degree(u) == 0 || seeds.size() > 4)
            seeds.push_back(u);
    }
    util::Rng rng(7);
    sampling::NeighborSampler sampler({5, 5});
    auto sg = sampler.sample(papers.graph(), seeds, rng);
    auto buckets = sampling::bucketizeSeeds(sg);
    EXPECT_EQ(buckets.front().degree, 0u);
    EXPECT_GE(buckets.front().volume(), 1u);
}

TEST(Padding, PaddedAtLeastBucketed)
{
    auto sg = sampleArxiv(96);
    sampling::FastBlockGenerator gen;
    graph::NodeList all(sg.numSeeds());
    for (graph::NodeId i = 0; i < sg.numSeeds(); ++i)
        all[i] = i;
    auto mb = gen.generate(sg, all);

    nn::ModelConfig config;
    config.num_layers = 2;
    config.feature_dim = 16;
    config.hidden_dim = 16;
    config.num_classes = 4;
    nn::MemoryModel model(config);

    EXPECT_GE(paddedMicroBatchBytes(model, mb),
              model.microBatchBytes(mb));
    EXPECT_GE(paddedMicroBatchFlops(model, mb),
              model.microBatchFlops(mb));
}

TEST(Padding, SkewedDegreesInflatePadding)
{
    // One high-degree dst + many low-degree dsts: padding explodes.
    sampling::Block block;
    block.num_dst = 10;
    // dst 0 has degree 20; dsts 1..9 have degree 1.
    block.offsets.resize(11);
    block.offsets[0] = 0;
    block.offsets[1] = 20;
    for (int i = 2; i <= 10; ++i)
        block.offsets[i] = block.offsets[i - 1] + 1;
    const std::size_t num_src = 40;
    for (std::size_t s = 0; s < num_src; ++s)
        block.src_nodes.push_back(static_cast<graph::NodeId>(s));
    for (std::size_t e = 0; e < block.offsets[10]; ++e)
        block.neighbors.push_back(
            static_cast<graph::NodeId>(10 + e % 30));
    block.validate();
    sampling::MicroBatch mb;
    mb.blocks = {block};

    nn::ModelConfig config;
    config.num_layers = 1;
    config.feature_dim = 8;
    config.hidden_dim = 8;
    config.num_classes = 2;
    nn::MemoryModel model(config);

    // Padded edges = 10 * 20 = 200 vs actual 29: > 3x inflation.
    EXPECT_GT(paddedMicroBatchBytes(model, mb),
              3 * model.microBatchBytes(mb) / 2);
}

} // namespace
} // namespace buffalo::baselines
