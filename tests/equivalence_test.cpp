/**
 * @file
 * The paper's central correctness claim (§IV-B, Table IV, Fig. 17):
 * Buffalo's micro-batch training with gradient accumulation is
 * *mathematically equivalent* to whole-batch training. These tests
 * demand bit-level-tight agreement of losses and parameters between
 * the two pipelines across models, aggregators, and micro-batch
 * counts.
 */
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "train/experiment.h"
#include "train/trainer.h"
#include "util/format.h"

namespace buffalo::train {
namespace {

graph::Dataset &
arxiv()
{
    static graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.08);
    return data;
}

struct EquivCase
{
    ModelKind kind;
    nn::AggregatorKind aggregator;
    const char *name;
};

class Equivalence : public ::testing::TestWithParam<EquivCase>
{
};

TEST_P(Equivalence, MicroBatchMatchesWholeBatch)
{
    const EquivCase &param = GetParam();
    auto &data = arxiv();

    TrainerOptions options;
    options.model_kind = param.kind;
    options.model.aggregator = param.aggregator;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    options.seed = 99;

    NodeList seeds(data.trainNodes().begin(),
                   data.trainNodes().begin() +
                       std::min<std::size_t>(
                           128, data.trainNodes().size()));

    // Whole batch on an effectively unlimited device.
    device::Device whole_dev("gpu", util::gib(16));
    WholeBatchTrainer whole(options, whole_dev);
    util::Rng whole_rng(7);
    auto whole_stats = whole.trainIteration(data, seeds, whole_rng);
    ASSERT_EQ(whole_stats.num_micro_batches, 1);

    // Buffalo under a tight budget forcing several micro-batches:
    // static bytes plus 60% of the whole batch's activation peak.
    const std::uint64_t tight =
        whole.staticBytes() +
        (whole_stats.peak_device_bytes - whole.staticBytes()) * 6 /
            10;
    device::Device buffalo_dev("gpu", tight);
    BuffaloTrainer buffalo(options, buffalo_dev);
    util::Rng buffalo_rng(7); // identical sampling stream
    auto buffalo_stats =
        buffalo.trainIteration(data, seeds, buffalo_rng);
    ASSERT_GT(buffalo_stats.num_micro_batches, 1)
        << "budget did not force micro-batching";

    // Loss parity: accumulated micro-batch losses equal the batch
    // loss up to float reduction order.
    EXPECT_NEAR(buffalo_stats.loss, whole_stats.loss,
                1e-4 * std::max(1.0, std::abs(whole_stats.loss)));
    EXPECT_EQ(buffalo_stats.correct, whole_stats.correct);
    EXPECT_EQ(buffalo_stats.num_outputs, whole_stats.num_outputs);

    // Parameter parity after the optimizer step.
    auto whole_params = whole.model().module().parameters();
    auto buffalo_params = buffalo.model().module().parameters();
    ASSERT_EQ(whole_params.size(), buffalo_params.size());
    for (std::size_t p = 0; p < whole_params.size(); ++p) {
        const double diff = tensor::maxAbsDiff(
            whole_params[p]->value(), buffalo_params[p]->value());
        EXPECT_LT(diff, 5e-4) << whole_params[p]->name();
    }

    // And memory is actually lower under Buffalo.
    EXPECT_LT(buffalo_stats.peak_device_bytes,
              whole_stats.peak_device_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Equivalence,
    ::testing::Values(
        EquivCase{ModelKind::Sage, nn::AggregatorKind::Mean,
                  "sage_mean"},
        EquivCase{ModelKind::Sage, nn::AggregatorKind::Pool,
                  "sage_pool"},
        EquivCase{ModelKind::Sage, nn::AggregatorKind::Lstm,
                  "sage_lstm"},
        EquivCase{ModelKind::Gat, nn::AggregatorKind::Mean,
                  "gat"},
        EquivCase{ModelKind::Gcn, nn::AggregatorKind::Mean,
                  "gcn"}),
    [](const ::testing::TestParamInfo<EquivCase> &info) {
        return info.param.name;
    });

TEST(Equivalence, MultiEpochConvergenceMatches)
{
    // Fig. 17: loss curves for batch vs micro-batch training align.
    auto &data = arxiv();
    TrainerOptions options;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    options.learning_rate = 5e-3;
    options.seed = 21;

    device::Device whole_dev("gpu", util::gib(16));
    WholeBatchTrainer whole(options, whole_dev);
    util::Rng rng_a(31);
    auto whole_curve = runTraining(whole, data, 4, 96, rng_a);

    device::Device buffalo_dev(
        "gpu", whole.staticBytes() + util::mib(4));
    BuffaloTrainer buffalo(options, buffalo_dev);
    util::Rng rng_b(31); // identical batch order + sampling
    auto buffalo_curve = runTraining(buffalo, data, 4, 96, rng_b);

    ASSERT_EQ(whole_curve.size(), buffalo_curve.size());
    for (std::size_t epoch = 0; epoch < whole_curve.size(); ++epoch) {
        EXPECT_NEAR(buffalo_curve[epoch].mean_loss,
                    whole_curve[epoch].mean_loss,
                    5e-3 * std::max(1.0,
                                    whole_curve[epoch].mean_loss))
            << "epoch " << epoch;
    }
    // Training must actually make progress.
    EXPECT_LT(whole_curve.back().mean_loss,
              whole_curve.front().mean_loss);
}

TEST(Equivalence, BettyAlsoMatchesWholeBatch)
{
    // Betty's micro-batching is equally exact — the paper's advantage
    // over it is time/memory, not correctness.
    auto &data = arxiv();
    TrainerOptions options;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    options.seed = 5;

    NodeList seeds(data.trainNodes().begin(),
                   data.trainNodes().begin() + 128);

    device::Device dev_a("gpu", util::gib(16));
    WholeBatchTrainer whole(options, dev_a);
    util::Rng rng_a(13);
    auto whole_stats = whole.trainIteration(data, seeds, rng_a);

    device::Device dev_b("gpu", util::gib(16));
    BettyTrainer betty(options, dev_b, 4);
    util::Rng rng_b(13);
    auto betty_stats = betty.trainIteration(data, seeds, rng_b);

    EXPECT_NEAR(betty_stats.loss, whole_stats.loss,
                1e-4 * std::max(1.0, std::abs(whole_stats.loss)));
}

} // namespace
} // namespace buffalo::train
