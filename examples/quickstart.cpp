/**
 * @file
 * Quickstart: train GraphSAGE on a memory-constrained simulated GPU
 * with Buffalo's bucket-level micro-batching.
 *
 * The five steps every Buffalo program follows:
 *   1. load (or build) a dataset,
 *   2. create a Device with the GPU memory budget,
 *   3. configure the model (aggregator, depth, widths, fanouts),
 *   4. construct a BuffaloTrainer,
 *   5. run training iterations — the scheduler transparently splits
 *      each batch into as many micro-batches as the budget requires.
 */
#include <cstdio>

#include "device/device.h"
#include "graph/datasets.h"
#include "train/experiment.h"
#include "train/trainer.h"
#include "util/format.h"

using namespace buffalo;

int
main()
{
    // 1. A simulated OGBN-arxiv (power-law citation graph).
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Arxiv, /*seed=*/42,
                           /*scale=*/0.25);
    std::printf("dataset %s: %u nodes, %llu edges, %d classes\n",
                data.name().c_str(), data.graph().numNodes(),
                static_cast<unsigned long long>(
                    data.graph().numEdges()),
                data.numClasses());

    // 2. A GPU with only 24 MB of memory — far too small for the
    //    whole batch below.
    device::Device gpu("gpu:0", util::mib(24));

    // 3. GraphSAGE with the memory-hungry LSTM aggregator.
    train::TrainerOptions options;
    options.model.aggregator = nn::AggregatorKind::Lstm;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 32;
    options.model.num_classes = data.numClasses();
    options.fanouts = {10, 25}; // input-most layer first
    options.learning_rate = 5e-3;

    // 4. The Buffalo trainer (Algorithm 2 of the paper).
    train::BuffaloTrainer trainer(options, gpu);

    // 5. Train. Each iteration samples a batch, schedules it into
    //    memory-safe bucket groups, and accumulates gradients across
    //    the micro-batches — mathematically identical to whole-batch
    //    training.
    util::Rng rng(7);
    for (int epoch = 0; epoch < 4; ++epoch) {
        auto batches = train::makeBatches(data.trainNodes(), 256, rng);
        double loss = 0.0;
        int micro_batches = 0;
        for (const auto &batch : batches) {
            auto stats = trainer.trainIteration(data, batch, rng);
            loss += stats.loss;
            micro_batches = stats.num_micro_batches;
        }
        std::printf("epoch %d: loss %.4f (%d micro-batches/iter, "
                    "peak %s of %s budget)\n",
                    epoch, loss / batches.size(), micro_batches,
                    util::formatBytes(
                        gpu.allocator().peakBytes())
                        .c_str(),
                    util::formatBytes(gpu.allocator().capacity())
                        .c_str());
    }
    std::printf("done — the LSTM model trained inside a budget the "
                "whole batch could never fit.\n");
    return 0;
}
