/**
 * @file
 * Bringing your own graph: build a graph with the public CooBuilder /
 * generator APIs, wrap it as a Dataset, and train a multi-head GAT
 * under a Buffalo memory budget.
 */
#include <cstdio>

#include "device/device.h"
#include "graph/coo.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "train/experiment.h"
#include "train/trainer.h"
#include "util/format.h"

using namespace buffalo;

int
main()
{
    // 1. Build a graph. Here: an RMAT web-style graph plus a few
    //    hand-added edges to show the builder API; in a real program
    //    this is where your edges come from.
    util::Rng rng(11);
    graph::CsrGraph base =
        graph::generateRmat(4096, 40000, 0.5, 0.2, 0.2, rng);
    graph::CooBuilder builder(base.numNodes());
    for (graph::NodeId u = 0; u < base.numNodes(); ++u)
        for (graph::NodeId v : base.neighbors(u))
            builder.addEdge(v, u);
    builder.addUndirectedEdge(0, 1); // your own edges go here
    graph::CsrGraph g = builder.toCsr();

    // 2. Label it (here: 6 communities by id range, smoothed by the
    //    graph structure in a real pipeline).
    std::vector<std::int32_t> labels(g.numNodes());
    for (graph::NodeId u = 0; u < g.numNodes(); ++u)
        labels[u] = static_cast<std::int32_t>(u * 6 / g.numNodes());

    // 3. Measure the clustering coefficient Buffalo's estimator needs.
    const double coefficient =
        graph::sampledClusteringCoefficient(g, 500, rng);

    // 4. Wrap as a Dataset.
    graph::Dataset data = graph::makeDataset(
        "my-web-graph", std::move(g), std::move(labels),
        /*num_classes=*/6, /*feature_dim=*/48, coefficient);
    std::printf("custom dataset '%s': %u nodes, %llu edges, "
                "clustering %.3f\n",
                data.name().c_str(), data.graph().numNodes(),
                static_cast<unsigned long long>(
                    data.graph().numEdges()),
                coefficient);

    // 5. Train a 2-head GAT under a small budget.
    train::TrainerOptions options;
    options.model_kind = train::ModelKind::Gat;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 32;
    options.model.num_classes = 6;
    options.model.num_heads = 2;
    options.fanouts = {5, 10};
    options.learning_rate = 5e-3;

    device::Device gpu("gpu:0", util::mib(16));
    train::BuffaloTrainer trainer(options, gpu);

    util::Rng train_rng(13);
    auto curve = train::runTraining(trainer, data, /*epochs=*/5,
                                    /*batch_size=*/128, train_rng);
    for (std::size_t epoch = 0; epoch < curve.size(); ++epoch) {
        std::printf("epoch %zu: loss %.4f accuracy %.3f\n", epoch,
                    curve[epoch].mean_loss, curve[epoch].accuracy);
    }
    std::printf("a GAT on your own graph, trained inside %s.\n",
                util::formatBytes(gpu.allocator().capacity()).c_str());
    return 0;
}
