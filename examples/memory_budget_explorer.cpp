/**
 * @file
 * Capacity planning with the Buffalo scheduler — no training needed.
 *
 * Given a model configuration and a batch, this example asks the
 * scheduler what plan it would produce under a ladder of GPU budgets:
 * how many micro-batches, how balanced, and how much headroom. This is
 * the "can I afford this model on this GPU?" workflow the paper's
 * Fig. 15 sweep automates.
 */
#include <cstdio>

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"
#include "graph/datasets.h"
#include "sampling/sampled_subgraph.h"
#include "util/format.h"
#include "util/table.h"

using namespace buffalo;

int
main()
{
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Products, 42, 0.5);
    std::printf("planning for %s (%u nodes, avg degree %.1f)\n",
                data.name().c_str(), data.graph().numNodes(),
                static_cast<double>(data.graph().numEdges()) /
                    data.graph().numNodes());

    // The model we would like to train.
    nn::ModelConfig config;
    config.aggregator = nn::AggregatorKind::Lstm;
    config.num_layers = 2;
    config.feature_dim = data.featureDim();
    config.hidden_dim = 64;
    config.num_classes = data.numClasses();
    nn::MemoryModel model(config);

    // One representative batch.
    util::Rng rng(3);
    sampling::NeighborSampler sampler({10, 25});
    graph::NodeList seeds(data.trainNodes().begin(),
                          data.trainNodes().begin() +
                              std::min<std::size_t>(
                                  1024, data.trainNodes().size()));
    auto sg = sampler.sample(data.graph(), seeds, rng);
    std::printf("batch: %zu seeds -> %zu sampled nodes\n",
                seeds.size(), sg.nodes().size());

    util::Table table({"budget", "micro-batches", "max group est",
                       "balance (max/min)", "headroom",
                       "plan time"});
    core::MicroBatchGenerator generator;
    for (double mb : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
        core::SchedulerOptions options;
        options.mem_constraint = util::mib(mb);
        options.reserved_bytes =
            model.weightBytes() + model.optimizerBytes();
        core::BuffaloScheduler scheduler(
            model, data.spec().paper_avg_coefficient, options);
        try {
            auto plan = scheduler.schedule(sg);
            std::uint64_t max_est = 0, min_est = UINT64_MAX;
            for (const auto &group : plan.groups) {
                max_est = std::max(max_est, group.est_bytes);
                min_est = std::min(min_est, group.est_bytes);
            }
            table.addRow(
                {util::formatBytes(options.mem_constraint),
                 std::to_string(plan.num_groups),
                 util::formatBytes(max_est),
                 util::Table::num(static_cast<double>(max_est) /
                                      std::max<std::uint64_t>(min_est,
                                                              1),
                                  2),
                 util::formatPercent(
                     1.0 - static_cast<double>(max_est) /
                               options.mem_constraint),
                 util::formatSeconds(plan.schedule_seconds)});
        } catch (const Error &) {
            table.addRow({util::formatBytes(options.mem_constraint),
                          "-", "-", "-", "-", "infeasible"});
        }
    }
    table.print();
    std::printf("\nreading the table: pick the smallest budget whose "
                "plan time and micro-batch count you can live with — "
                "every plan is memory-safe by construction.\n");
    return 0;
}
