/**
 * @file
 * The paper's headline scenario: training on a billion-scale-shaped
 * citation graph (ogbn-papers-sim) on a single memory-limited GPU.
 *
 * The dataset contains zero-in-edge nodes, which break Betty's REG
 * construction (paper Fig. 11 reports "no data" for OGBN-papers);
 * Buffalo's degree-0 bucket handles them natively. This example shows
 * both behaviours, then trains with Buffalo under a tight budget.
 */
#include <cstdio>

#include "baselines/betty.h"
#include "device/device.h"
#include "graph/datasets.h"
#include "train/trainer.h"
#include "util/format.h"

using namespace buffalo;

int
main()
{
    graph::Dataset data =
        graph::loadDataset(graph::DatasetId::Papers, 42, 0.5);
    std::printf("dataset %s: %u nodes (%u with zero in-edges), "
                "%llu edges\n",
                data.name().c_str(), data.graph().numNodes(),
                data.graph().countZeroDegreeNodes(),
                static_cast<unsigned long long>(
                    data.graph().numEdges()));

    // A batch that includes some isolated nodes, as a random batch of
    // a real billion-scale graph would.
    graph::NodeList seeds;
    const auto &train = data.trainNodes();
    const std::size_t count = std::min<std::size_t>(1024, train.size());
    for (std::size_t i = 0; i < count; ++i)
        seeds.push_back(train[i * train.size() / count]);

    train::TrainerOptions options;
    options.model.aggregator = nn::AggregatorKind::Lstm;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 32;
    options.model.num_classes = data.numClasses();
    options.fanouts = {10, 25};
    options.mode = train::ExecutionMode::CostModel;

    const std::uint64_t budget = util::mib(64);

    // Betty cannot process this batch at all.
    {
        device::Device gpu("gpu:betty", budget);
        train::BettyTrainer betty(options, gpu, 8);
        util::Rng rng(5);
        try {
            betty.trainIteration(data, seeds, rng);
            std::printf("Betty: unexpectedly succeeded?\n");
        } catch (const baselines::BettyUnsupported &e) {
            std::printf("Betty: FAILED as in the paper — %s\n",
                        e.what());
        }
    }

    // Buffalo schedules around both the isolated nodes and the budget.
    device::Device gpu("gpu:buffalo", budget);
    train::BuffaloTrainer trainer(options, gpu);
    util::Rng rng(5);
    for (int iteration = 0; iteration < 3; ++iteration) {
        auto stats = trainer.trainIteration(data, seeds, rng);
        std::printf(
            "Buffalo iteration %d: %d micro-batches, peak %s / %s, "
            "simulated device time %s, end-to-end %s\n",
            iteration, stats.num_micro_batches,
            util::formatBytes(stats.peak_device_bytes).c_str(),
            util::formatBytes(budget).c_str(),
            util::formatSeconds(
                stats.phases.get(train::phaseName(train::Phase::GpuCompute)))
                .c_str(),
            util::formatSeconds(stats.endToEndSeconds()).c_str());
    }
    std::printf("the paper reports the same qualitative result: "
                "OGBN-papers trains in tens of seconds per iteration "
                "on one GPU, where prior systems need minutes or "
                "cannot run.\n");
    return 0;
}
