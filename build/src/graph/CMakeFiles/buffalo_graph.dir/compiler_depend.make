# Empty compiler generated dependencies file for buffalo_graph.
# This may be replaced when dependencies are built.
