file(REMOVE_RECURSE
  "libbuffalo_graph.a"
)
