file(REMOVE_RECURSE
  "CMakeFiles/buffalo_graph.dir/coo.cpp.o"
  "CMakeFiles/buffalo_graph.dir/coo.cpp.o.d"
  "CMakeFiles/buffalo_graph.dir/csr.cpp.o"
  "CMakeFiles/buffalo_graph.dir/csr.cpp.o.d"
  "CMakeFiles/buffalo_graph.dir/datasets.cpp.o"
  "CMakeFiles/buffalo_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/buffalo_graph.dir/generators.cpp.o"
  "CMakeFiles/buffalo_graph.dir/generators.cpp.o.d"
  "CMakeFiles/buffalo_graph.dir/io.cpp.o"
  "CMakeFiles/buffalo_graph.dir/io.cpp.o.d"
  "CMakeFiles/buffalo_graph.dir/stats.cpp.o"
  "CMakeFiles/buffalo_graph.dir/stats.cpp.o.d"
  "CMakeFiles/buffalo_graph.dir/subgraph.cpp.o"
  "CMakeFiles/buffalo_graph.dir/subgraph.cpp.o.d"
  "libbuffalo_graph.a"
  "libbuffalo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
