# Empty dependencies file for buffalo_tensor.
# This may be replaced when dependencies are built.
