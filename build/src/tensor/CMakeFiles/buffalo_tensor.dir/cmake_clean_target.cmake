file(REMOVE_RECURSE
  "libbuffalo_tensor.a"
)
