file(REMOVE_RECURSE
  "CMakeFiles/buffalo_tensor.dir/ops.cpp.o"
  "CMakeFiles/buffalo_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/buffalo_tensor.dir/tensor.cpp.o"
  "CMakeFiles/buffalo_tensor.dir/tensor.cpp.o.d"
  "libbuffalo_tensor.a"
  "libbuffalo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
