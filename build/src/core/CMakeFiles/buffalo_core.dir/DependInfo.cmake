
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/grouping.cpp" "src/core/CMakeFiles/buffalo_core.dir/grouping.cpp.o" "gcc" "src/core/CMakeFiles/buffalo_core.dir/grouping.cpp.o.d"
  "/root/repo/src/core/mem_estimator.cpp" "src/core/CMakeFiles/buffalo_core.dir/mem_estimator.cpp.o" "gcc" "src/core/CMakeFiles/buffalo_core.dir/mem_estimator.cpp.o.d"
  "/root/repo/src/core/micro_batch_generator.cpp" "src/core/CMakeFiles/buffalo_core.dir/micro_batch_generator.cpp.o" "gcc" "src/core/CMakeFiles/buffalo_core.dir/micro_batch_generator.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/buffalo_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/buffalo_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/buffalo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/buffalo_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/buffalo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/buffalo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/buffalo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
