file(REMOVE_RECURSE
  "CMakeFiles/buffalo_core.dir/grouping.cpp.o"
  "CMakeFiles/buffalo_core.dir/grouping.cpp.o.d"
  "CMakeFiles/buffalo_core.dir/mem_estimator.cpp.o"
  "CMakeFiles/buffalo_core.dir/mem_estimator.cpp.o.d"
  "CMakeFiles/buffalo_core.dir/micro_batch_generator.cpp.o"
  "CMakeFiles/buffalo_core.dir/micro_batch_generator.cpp.o.d"
  "CMakeFiles/buffalo_core.dir/scheduler.cpp.o"
  "CMakeFiles/buffalo_core.dir/scheduler.cpp.o.d"
  "libbuffalo_core.a"
  "libbuffalo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
