file(REMOVE_RECURSE
  "libbuffalo_core.a"
)
