# Empty compiler generated dependencies file for buffalo_core.
# This may be replaced when dependencies are built.
