file(REMOVE_RECURSE
  "CMakeFiles/buffalo_sampling.dir/block.cpp.o"
  "CMakeFiles/buffalo_sampling.dir/block.cpp.o.d"
  "CMakeFiles/buffalo_sampling.dir/block_generator.cpp.o"
  "CMakeFiles/buffalo_sampling.dir/block_generator.cpp.o.d"
  "CMakeFiles/buffalo_sampling.dir/bucketing.cpp.o"
  "CMakeFiles/buffalo_sampling.dir/bucketing.cpp.o.d"
  "CMakeFiles/buffalo_sampling.dir/sampled_subgraph.cpp.o"
  "CMakeFiles/buffalo_sampling.dir/sampled_subgraph.cpp.o.d"
  "libbuffalo_sampling.a"
  "libbuffalo_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
