# Empty compiler generated dependencies file for buffalo_sampling.
# This may be replaced when dependencies are built.
