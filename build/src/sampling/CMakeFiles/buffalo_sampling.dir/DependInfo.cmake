
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/block.cpp" "src/sampling/CMakeFiles/buffalo_sampling.dir/block.cpp.o" "gcc" "src/sampling/CMakeFiles/buffalo_sampling.dir/block.cpp.o.d"
  "/root/repo/src/sampling/block_generator.cpp" "src/sampling/CMakeFiles/buffalo_sampling.dir/block_generator.cpp.o" "gcc" "src/sampling/CMakeFiles/buffalo_sampling.dir/block_generator.cpp.o.d"
  "/root/repo/src/sampling/bucketing.cpp" "src/sampling/CMakeFiles/buffalo_sampling.dir/bucketing.cpp.o" "gcc" "src/sampling/CMakeFiles/buffalo_sampling.dir/bucketing.cpp.o.d"
  "/root/repo/src/sampling/sampled_subgraph.cpp" "src/sampling/CMakeFiles/buffalo_sampling.dir/sampled_subgraph.cpp.o" "gcc" "src/sampling/CMakeFiles/buffalo_sampling.dir/sampled_subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/buffalo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/buffalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
