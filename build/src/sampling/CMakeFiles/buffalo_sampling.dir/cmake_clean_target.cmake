file(REMOVE_RECURSE
  "libbuffalo_sampling.a"
)
