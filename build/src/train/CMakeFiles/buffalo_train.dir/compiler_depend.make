# Empty compiler generated dependencies file for buffalo_train.
# This may be replaced when dependencies are built.
