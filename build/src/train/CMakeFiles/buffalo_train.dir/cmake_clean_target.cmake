file(REMOVE_RECURSE
  "libbuffalo_train.a"
)
