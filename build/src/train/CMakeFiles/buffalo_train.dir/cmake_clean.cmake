file(REMOVE_RECURSE
  "CMakeFiles/buffalo_train.dir/evaluator.cpp.o"
  "CMakeFiles/buffalo_train.dir/evaluator.cpp.o.d"
  "CMakeFiles/buffalo_train.dir/experiment.cpp.o"
  "CMakeFiles/buffalo_train.dir/experiment.cpp.o.d"
  "CMakeFiles/buffalo_train.dir/feature_loader.cpp.o"
  "CMakeFiles/buffalo_train.dir/feature_loader.cpp.o.d"
  "CMakeFiles/buffalo_train.dir/model_adapter.cpp.o"
  "CMakeFiles/buffalo_train.dir/model_adapter.cpp.o.d"
  "CMakeFiles/buffalo_train.dir/trainer.cpp.o"
  "CMakeFiles/buffalo_train.dir/trainer.cpp.o.d"
  "libbuffalo_train.a"
  "libbuffalo_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
