# Empty dependencies file for buffalo_baselines.
# This may be replaced when dependencies are built.
