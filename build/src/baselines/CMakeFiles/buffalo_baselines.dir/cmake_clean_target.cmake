file(REMOVE_RECURSE
  "libbuffalo_baselines.a"
)
