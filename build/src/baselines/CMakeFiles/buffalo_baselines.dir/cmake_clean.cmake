file(REMOVE_RECURSE
  "CMakeFiles/buffalo_baselines.dir/betty.cpp.o"
  "CMakeFiles/buffalo_baselines.dir/betty.cpp.o.d"
  "CMakeFiles/buffalo_baselines.dir/padding.cpp.o"
  "CMakeFiles/buffalo_baselines.dir/padding.cpp.o.d"
  "libbuffalo_baselines.a"
  "libbuffalo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
