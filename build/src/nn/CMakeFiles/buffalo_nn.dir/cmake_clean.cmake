file(REMOVE_RECURSE
  "CMakeFiles/buffalo_nn.dir/aggregators.cpp.o"
  "CMakeFiles/buffalo_nn.dir/aggregators.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/buffalo_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/gat_model.cpp.o"
  "CMakeFiles/buffalo_nn.dir/gat_model.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/gcn_model.cpp.o"
  "CMakeFiles/buffalo_nn.dir/gcn_model.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/linear.cpp.o"
  "CMakeFiles/buffalo_nn.dir/linear.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/loss.cpp.o"
  "CMakeFiles/buffalo_nn.dir/loss.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/lstm.cpp.o"
  "CMakeFiles/buffalo_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/memory_model.cpp.o"
  "CMakeFiles/buffalo_nn.dir/memory_model.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/optimizer.cpp.o"
  "CMakeFiles/buffalo_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/parameter.cpp.o"
  "CMakeFiles/buffalo_nn.dir/parameter.cpp.o.d"
  "CMakeFiles/buffalo_nn.dir/sage_model.cpp.o"
  "CMakeFiles/buffalo_nn.dir/sage_model.cpp.o.d"
  "libbuffalo_nn.a"
  "libbuffalo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
