file(REMOVE_RECURSE
  "libbuffalo_nn.a"
)
