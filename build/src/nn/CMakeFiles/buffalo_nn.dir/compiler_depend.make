# Empty compiler generated dependencies file for buffalo_nn.
# This may be replaced when dependencies are built.
