
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/aggregators.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/aggregators.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/aggregators.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/gat_model.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/gat_model.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/gat_model.cpp.o.d"
  "/root/repo/src/nn/gcn_model.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/gcn_model.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/gcn_model.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/memory_model.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/memory_model.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/memory_model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/parameter.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/parameter.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/parameter.cpp.o.d"
  "/root/repo/src/nn/sage_model.cpp" "src/nn/CMakeFiles/buffalo_nn.dir/sage_model.cpp.o" "gcc" "src/nn/CMakeFiles/buffalo_nn.dir/sage_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/buffalo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/buffalo_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/buffalo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/buffalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
