# Empty dependencies file for buffalo_device.
# This may be replaced when dependencies are built.
