file(REMOVE_RECURSE
  "CMakeFiles/buffalo_device.dir/cost_model.cpp.o"
  "CMakeFiles/buffalo_device.dir/cost_model.cpp.o.d"
  "CMakeFiles/buffalo_device.dir/device.cpp.o"
  "CMakeFiles/buffalo_device.dir/device.cpp.o.d"
  "CMakeFiles/buffalo_device.dir/memory.cpp.o"
  "CMakeFiles/buffalo_device.dir/memory.cpp.o.d"
  "libbuffalo_device.a"
  "libbuffalo_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
