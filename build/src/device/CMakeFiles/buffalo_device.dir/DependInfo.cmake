
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/cost_model.cpp" "src/device/CMakeFiles/buffalo_device.dir/cost_model.cpp.o" "gcc" "src/device/CMakeFiles/buffalo_device.dir/cost_model.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/buffalo_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/buffalo_device.dir/device.cpp.o.d"
  "/root/repo/src/device/memory.cpp" "src/device/CMakeFiles/buffalo_device.dir/memory.cpp.o" "gcc" "src/device/CMakeFiles/buffalo_device.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/buffalo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/buffalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
