file(REMOVE_RECURSE
  "libbuffalo_device.a"
)
