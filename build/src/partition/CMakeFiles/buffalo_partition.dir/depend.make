# Empty dependencies file for buffalo_partition.
# This may be replaced when dependencies are built.
