file(REMOVE_RECURSE
  "CMakeFiles/buffalo_partition.dir/metis_like.cpp.o"
  "CMakeFiles/buffalo_partition.dir/metis_like.cpp.o.d"
  "CMakeFiles/buffalo_partition.dir/partitioner.cpp.o"
  "CMakeFiles/buffalo_partition.dir/partitioner.cpp.o.d"
  "CMakeFiles/buffalo_partition.dir/weighted_graph.cpp.o"
  "CMakeFiles/buffalo_partition.dir/weighted_graph.cpp.o.d"
  "libbuffalo_partition.a"
  "libbuffalo_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
