file(REMOVE_RECURSE
  "libbuffalo_partition.a"
)
