file(REMOVE_RECURSE
  "CMakeFiles/buffalo_util.dir/flags.cpp.o"
  "CMakeFiles/buffalo_util.dir/flags.cpp.o.d"
  "CMakeFiles/buffalo_util.dir/format.cpp.o"
  "CMakeFiles/buffalo_util.dir/format.cpp.o.d"
  "CMakeFiles/buffalo_util.dir/histogram.cpp.o"
  "CMakeFiles/buffalo_util.dir/histogram.cpp.o.d"
  "CMakeFiles/buffalo_util.dir/logging.cpp.o"
  "CMakeFiles/buffalo_util.dir/logging.cpp.o.d"
  "CMakeFiles/buffalo_util.dir/rng.cpp.o"
  "CMakeFiles/buffalo_util.dir/rng.cpp.o.d"
  "CMakeFiles/buffalo_util.dir/table.cpp.o"
  "CMakeFiles/buffalo_util.dir/table.cpp.o.d"
  "CMakeFiles/buffalo_util.dir/thread_pool.cpp.o"
  "CMakeFiles/buffalo_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/buffalo_util.dir/timer.cpp.o"
  "CMakeFiles/buffalo_util.dir/timer.cpp.o.d"
  "libbuffalo_util.a"
  "libbuffalo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
