file(REMOVE_RECURSE
  "libbuffalo_util.a"
)
