# Empty compiler generated dependencies file for buffalo_util.
# This may be replaced when dependencies are built.
