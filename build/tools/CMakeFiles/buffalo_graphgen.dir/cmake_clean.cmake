file(REMOVE_RECURSE
  "CMakeFiles/buffalo_graphgen.dir/buffalo_graphgen.cpp.o"
  "CMakeFiles/buffalo_graphgen.dir/buffalo_graphgen.cpp.o.d"
  "buffalo_graphgen"
  "buffalo_graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
