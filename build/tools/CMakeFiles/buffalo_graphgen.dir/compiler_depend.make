# Empty compiler generated dependencies file for buffalo_graphgen.
# This may be replaced when dependencies are built.
