# Empty compiler generated dependencies file for buffalo_train_cli.
# This may be replaced when dependencies are built.
