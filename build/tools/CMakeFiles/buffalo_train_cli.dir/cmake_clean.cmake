file(REMOVE_RECURSE
  "CMakeFiles/buffalo_train_cli.dir/buffalo_train.cpp.o"
  "CMakeFiles/buffalo_train_cli.dir/buffalo_train.cpp.o.d"
  "buffalo_train"
  "buffalo_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffalo_train_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
