# Empty compiler generated dependencies file for bench_table3_estimator_error.
# This may be replaced when dependencies are built.
