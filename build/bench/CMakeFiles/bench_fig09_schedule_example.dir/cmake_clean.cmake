file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_schedule_example.dir/bench_fig09_schedule_example.cpp.o"
  "CMakeFiles/bench_fig09_schedule_example.dir/bench_fig09_schedule_example.cpp.o.d"
  "bench_fig09_schedule_example"
  "bench_fig09_schedule_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_schedule_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
