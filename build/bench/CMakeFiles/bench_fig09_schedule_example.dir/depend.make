# Empty dependencies file for bench_fig09_schedule_example.
# This may be replaced when dependencies are built.
