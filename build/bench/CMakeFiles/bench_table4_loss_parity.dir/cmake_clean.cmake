file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_loss_parity.dir/bench_table4_loss_parity.cpp.o"
  "CMakeFiles/bench_table4_loss_parity.dir/bench_table4_loss_parity.cpp.o.d"
  "bench_table4_loss_parity"
  "bench_table4_loss_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_loss_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
