# Empty compiler generated dependencies file for bench_table4_loss_parity.
# This may be replaced when dependencies are built.
