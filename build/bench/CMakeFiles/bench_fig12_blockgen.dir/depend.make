# Empty dependencies file for bench_fig12_blockgen.
# This may be replaced when dependencies are built.
