file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_blockgen.dir/bench_fig12_blockgen.cpp.o"
  "CMakeFiles/bench_fig12_blockgen.dir/bench_fig12_blockgen.cpp.o.d"
  "bench_fig12_blockgen"
  "bench_fig12_blockgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_blockgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
