
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_blockgen.cpp" "bench/CMakeFiles/bench_fig12_blockgen.dir/bench_fig12_blockgen.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_blockgen.dir/bench_fig12_blockgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/buffalo_train.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/buffalo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/buffalo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/buffalo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/buffalo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/buffalo_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/buffalo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/buffalo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/buffalo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/buffalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
