# Empty compiler generated dependencies file for bench_fig13_memory_wall_broken.
# This may be replaced when dependencies are built.
