file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_memory_wall_broken.dir/bench_fig13_memory_wall_broken.cpp.o"
  "CMakeFiles/bench_fig13_memory_wall_broken.dir/bench_fig13_memory_wall_broken.cpp.o.d"
  "bench_fig13_memory_wall_broken"
  "bench_fig13_memory_wall_broken.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_memory_wall_broken.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
