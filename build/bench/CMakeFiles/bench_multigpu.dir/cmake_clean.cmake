file(REMOVE_RECURSE
  "CMakeFiles/bench_multigpu.dir/bench_multigpu.cpp.o"
  "CMakeFiles/bench_multigpu.dir/bench_multigpu.cpp.o.d"
  "bench_multigpu"
  "bench_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
