# Empty compiler generated dependencies file for bench_fig15_budget_sensitivity.
# This may be replaced when dependencies are built.
