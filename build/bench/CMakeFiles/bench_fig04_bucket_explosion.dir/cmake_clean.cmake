file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_bucket_explosion.dir/bench_fig04_bucket_explosion.cpp.o"
  "CMakeFiles/bench_fig04_bucket_explosion.dir/bench_fig04_bucket_explosion.cpp.o.d"
  "bench_fig04_bucket_explosion"
  "bench_fig04_bucket_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_bucket_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
