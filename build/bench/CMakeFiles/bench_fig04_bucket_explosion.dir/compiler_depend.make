# Empty compiler generated dependencies file for bench_fig04_bucket_explosion.
# This may be replaced when dependencies are built.
