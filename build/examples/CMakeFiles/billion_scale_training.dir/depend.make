# Empty dependencies file for billion_scale_training.
# This may be replaced when dependencies are built.
