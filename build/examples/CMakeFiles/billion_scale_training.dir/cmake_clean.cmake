file(REMOVE_RECURSE
  "CMakeFiles/billion_scale_training.dir/billion_scale_training.cpp.o"
  "CMakeFiles/billion_scale_training.dir/billion_scale_training.cpp.o.d"
  "billion_scale_training"
  "billion_scale_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billion_scale_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
