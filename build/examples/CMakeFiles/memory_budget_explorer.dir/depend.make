# Empty dependencies file for memory_budget_explorer.
# This may be replaced when dependencies are built.
