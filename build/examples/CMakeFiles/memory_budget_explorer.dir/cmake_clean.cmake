file(REMOVE_RECURSE
  "CMakeFiles/memory_budget_explorer.dir/memory_budget_explorer.cpp.o"
  "CMakeFiles/memory_budget_explorer.dir/memory_budget_explorer.cpp.o.d"
  "memory_budget_explorer"
  "memory_budget_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_budget_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
