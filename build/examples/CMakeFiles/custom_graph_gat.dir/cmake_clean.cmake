file(REMOVE_RECURSE
  "CMakeFiles/custom_graph_gat.dir/custom_graph_gat.cpp.o"
  "CMakeFiles/custom_graph_gat.dir/custom_graph_gat.cpp.o.d"
  "custom_graph_gat"
  "custom_graph_gat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_graph_gat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
