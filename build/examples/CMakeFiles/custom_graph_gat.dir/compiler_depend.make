# Empty compiler generated dependencies file for custom_graph_gat.
# This may be replaced when dependencies are built.
