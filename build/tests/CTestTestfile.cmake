# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/bucketing_test[1]_include.cmake")
include("/root/repo/build/tests/nn_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/nn_modules_test[1]_include.cmake")
include("/root/repo/build/tests/memory_model_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/core_grouping_test[1]_include.cmake")
include("/root/repo/build/tests/core_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_fuzz_test[1]_include.cmake")
