# Empty dependencies file for core_grouping_test.
# This may be replaced when dependencies are built.
