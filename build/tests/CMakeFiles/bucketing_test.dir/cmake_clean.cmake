file(REMOVE_RECURSE
  "CMakeFiles/bucketing_test.dir/bucketing_test.cpp.o"
  "CMakeFiles/bucketing_test.dir/bucketing_test.cpp.o.d"
  "bucketing_test"
  "bucketing_test.pdb"
  "bucketing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucketing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
